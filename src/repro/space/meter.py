"""The space meter: drives a machine and measures sup space(C_i).

Definition 21 (space-efficient computation): the GC rule is applied
whenever it is applicable, i.e. after every step on which garbage
exists.  Definition 23 takes the supremum of space(C_i) over the whole
computation — including the configurations *before* each collection,
so allocation spikes are charged exactly as the paper requires.

``gc_interval`` > 1 relaxes the forced-GC schedule (collect every k-th
step); this exists for the section 7 experiment showing that a real
collector running less often costs at most a small constant factor R
over collecting after every step.

Two metering engines drive the same loop:

- ``engine="delta"`` (the default) — the incremental engine.  It keeps
  a :class:`~repro.machine.gc.RefTracker` (per-location reference
  counts fed by the store's mutation hooks and by per-step
  configuration diffs) so each application of the GC rule is a
  decrement cascade over the references the step dropped, O(delta)
  instead of O(live heap); and, under linked accounting, a
  :class:`~repro.space.linked.BindingLedger` plus the cached
  ``Kont.linked_space`` / ``Store.linked_structural`` totals so each
  U_X measurement is O(1) instead of a configuration re-walk.  Cycle
  suspects are resolved locally (rooted-anchor check, bounded trial
  deletion — see the ``gc`` module docstring); the engine degrades to
  the canonical trace only per-application when that analysis cannot
  decide, and permanently when an escape procedure enters the
  configuration (reference counts do not model the continuation
  chains it retains).  Either way the measured numbers are
  *identical* to the reference engine on every program.
- ``engine="generational"`` — the delta engine with the tracker's
  generational mode switched on (tenure floor, epoch-cached trial
  verdicts, incremental unrooted-anchor set, survival-driven
  promotion, remembered set — see the ``gc`` module docstring).  The
  reclaimed locations per application are identical to ``delta``; only
  the amount of cold state re-examined per collection shrinks.
- ``engine="reference"`` — the seed behaviour: canonical full-heap
  trace per application, direct configuration re-walk per measurement.
  Kept as the verification oracle; the agreement tests in
  ``tests/test_delta_meter.py`` hold the engines equal over the
  corpus, the separator families, and random programs.

:func:`run_sampled` is the checkpointed sampling meter
(``meter="sampled"``): it drives the same trajectory per-step but
applies the GC rule lazily, reading an O(1) *upper bound* on the exact
pre-GC space each step and reconstructing the exact measurement
retroactively (pinned collection against the previous configuration's
roots) only when the bound threatens the running sup, every
``checkpoint_every`` transitions, and at every allocation-burst
watermark.  The reported sup is exact: any step whose bound could not
be resolved exactly records the bound as a *suspect*, and a run whose
suspects are not all dominated by the final sup transparently replays
under the exact meter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..machine.config import Configuration, Final, State
from ..machine.continuation import Kont
from ..machine.errors import StepLimitExceeded
from ..machine.gc import RefTracker, collect, collect_final
from ..machine.machine import Machine
from ..machine.values import Value
from ..syntax.ast import Expr, ast_size
from .flat import configuration_space, value_space
from .linked import BindingLedger, configuration_space_linked, value_structural

DEFAULT_STEP_LIMIT = 5_000_000

ENGINES = ("delta", "generational", "reference")

#: Default sampled-meter knobs: exact checkpoint every this many
#: transitions, and whenever this many locations were allocated since
#: the last collection (the burst watermark also bounds how far the
#: lazily-collected store may outgrow the exact one).
DEFAULT_CHECKPOINT_EVERY = 64
DEFAULT_BURST = 512


@dataclass
class MeterResult:
    """Everything measured while running one program on one machine."""

    machine: str
    sup_space: int
    program_size: int
    steps: int
    final: Final
    collected: int
    peak_step: int
    trace: List[Tuple[int, int]] = field(default_factory=list)
    #: Engine/meter observability (``repro analyze --meter-audit``):
    #: trial/scan/promotion counters, remembered-set size, sampled-mode
    #: trip and checkpoint counts, certification outcome.
    meter_stats: dict = field(default_factory=dict)

    @property
    def consumption(self) -> int:
        """S_X(P, D) (or U_X): |P| + sup space(C_i), Definition 23."""
        return self.program_size + self.sup_space


class QuotaExceeded(Exception):
    """A run's certified space lower bound crossed its byte budget.

    ``budget`` caps the Definition 23 consumption ``|P| + sup space``.
    The exact meter kills at the first transition whose measurement
    crosses; the sampled meter kills at the first checkpoint whose
    retro-exact reconstruction crosses.  Every measurement that can
    trigger a kill is a lower bound of the run's true sup (exact trips
    are exact; write-step trip readings can only understate the exact
    pre-GC space), so a program whose true consumption fits the budget
    is never killed, and an uncertified sampled run that slips through
    is caught by its transparent exact replay.

    The exception carries a structured receipt: the blame census of
    the killing configuration (exact under both accountings, summing
    to ``sup_space``) and its top holder, so the kill message itself
    says *who* held the space.
    """

    def __init__(
        self,
        machine: str,
        budget: int,
        consumption: int,
        sup_space: int,
        step: int,
        linked: bool,
        fixed_precision: bool,
        blame: dict,
    ):
        self.machine = machine
        self.budget = budget
        self.consumption = consumption
        self.sup_space = sup_space
        self.step = step
        self.linked = linked
        self.fixed_precision = fixed_precision
        self.blame = dict(blame)
        self.holder = (
            max(self.blame, key=self.blame.get) if self.blame else None
        )
        accounting = "U" if linked else "S"
        super().__init__(
            f"space quota exceeded on {machine}: certified "
            f"{accounting}_{machine} >= {consumption} > budget {budget} "
            f"at step {step} (top holder: {self.holder})"
        )

    def receipt(self) -> dict:
        """The kill as plain data (serving/CLI receipt payload)."""
        return {
            "kind": "quota",
            "machine": self.machine,
            "budget": self.budget,
            "consumption": self.consumption,
            "sup_space": self.sup_space,
            "step": self.step,
            "accounting": "linked" if self.linked else "flat",
            "fixed_precision": self.fixed_precision,
            "holder": self.holder,
            "blame": self.blame,
        }


def _quota_kill(
    machine: Machine,
    budget: int,
    program_size: int,
    space: int,
    step: int,
    linked: bool,
    fixed_precision: bool,
    configuration,
) -> QuotaExceeded:
    """Build the structured kill for a measurement that crossed."""
    from ..telemetry.blame import blame_configuration

    try:
        blame = blame_configuration(configuration, linked, fixed_precision)
    except Exception:  # census is best-effort; the kill is not
        blame = {}
    return QuotaExceeded(
        machine.name,
        budget,
        program_size + space,
        space,
        step,
        linked,
        fixed_precision,
        blame,
    )


class ReferenceMeter:
    """The canonical engine: trace per collection, re-walk per measure."""

    __slots__ = ("uses_gc", "fixed_precision", "_measure", "bus", "prov")

    #: The canonical engine never *falls back* (it is the fallback);
    #: kept as a class constant so telemetry reads one attribute on
    #: either engine.
    canonical_fallbacks = 0
    fallback = False

    def __init__(self, machine: Machine, linked: bool, fixed_precision: bool):
        self.uses_gc = machine.uses_gc_rule
        self.fixed_precision = fixed_precision
        self._measure = (
            configuration_space_linked if linked else configuration_space
        )
        self.bus = None
        #: Optional allocation-site provenance sink (a retention
        #: profiler's :class:`~repro.telemetry.retention.AllocSites`);
        #: when set this engine installs itself as the store tracker
        #: purely to forward allocation events.
        self.prov = None

    def attach_bus(self, bus) -> None:
        """Publish this engine's reclamations to a trace bus."""
        self.bus = bus

    # -- store tracker interface (provenance forwarding only) ---------------

    def on_alloc(self, location, value) -> None:
        if self.prov is not None:
            self.prov.on_alloc(location, value)

    def on_write(self, location, old, new) -> None:
        pass

    def on_delete(self, location, value) -> None:
        if self.prov is not None:
            self.prov.on_delete(location, value)

    def prime(self, state: State) -> int:
        collected = collect(state, self.bus) if self.uses_gc else 0
        if self.prov is not None:
            state.store.tracker = self
        return collected

    def transition(self, configuration: Configuration) -> None:
        pass

    def measure(self, configuration: Configuration) -> int:
        return self._measure(configuration, self.fixed_precision)

    def collect(self, state: State, pin_from: Optional[int] = None) -> int:
        return collect(state, self.bus, pin_from)

    def collect_final(self, final: Final, pin_from: Optional[int] = None) -> int:
        return collect_final(final, self.bus, pin_from)

    def detach(self, store) -> None:
        if store is not None and store.tracker is self:
            store.tracker = None


class DeltaMeter:
    """The incremental engine: refcount delta-GC + memoized U_X.

    Implements the store tracker interface (``on_alloc`` / ``on_write``
    / ``on_delete``) by fanning each event to the reference-count
    tracker and (under linked accounting) the binding ledger, and
    tracks the configuration's root components — register environment,
    continuation, accumulator — by diffing them across steps.
    """

    __slots__ = (
        "uses_gc",
        "linked",
        "fixed_precision",
        "tracker",
        "ledger",
        "blame_inc",
        "prov",
        "fallback",
        "_fallback_measure",
        "_env",
        "_kont",
        "_acc",
        "_store",
        "bus",
        "canonical_fallbacks",
    )

    def __init__(
        self,
        machine: Machine,
        linked: bool,
        fixed_precision: bool,
        generational: bool = False,
    ):
        self.uses_gc = machine.uses_gc_rule
        self.linked = linked
        self.fixed_precision = fixed_precision
        self.tracker: Optional[RefTracker] = (
            RefTracker(generational) if self.uses_gc else None
        )
        self.ledger: Optional[BindingLedger] = BindingLedger() if linked else None
        #: Optional incremental blame sink (attached by a profiler in
        #: incremental mode *before* :meth:`prime`); receives the same
        #: store/root deltas this engine already tracks.
        self.blame_inc = None
        #: Optional allocation-site provenance sink (a retention
        #: profiler's :class:`~repro.telemetry.retention.AllocSites`);
        #: unlike the other sinks it survives the escape fallback —
        #: allocation events stay well-defined even when reference
        #: counts stop modelling reachability.
        self.prov = None
        self.fallback = False
        self.bus = None
        #: GC-rule applications where the local cycle analysis could
        #: not decide and the canonical trace ran (telemetry).
        self.canonical_fallbacks = 0
        self._fallback_measure = (
            configuration_space_linked if linked else configuration_space
        )
        # Last-seen root components (None until primed).
        self._env = None
        self._kont: Optional[Kont] = None
        self._acc: Optional[Value] = None
        self._store = None

    # -- store tracker interface -------------------------------------------

    def on_alloc(self, location, value) -> None:
        if self.tracker is not None:
            self.tracker.on_alloc(location, value)
        if self.ledger is not None:
            self.ledger.on_alloc(location, value)
        if self.blame_inc is not None:
            self.blame_inc.store_add(value)
        if self.prov is not None:
            self.prov.on_alloc(location, value)

    def on_write(self, location, old, new) -> None:
        if self.tracker is not None:
            self.tracker.on_write(location, old, new)
        if self.ledger is not None:
            self.ledger.on_write(location, old, new)
        if self.blame_inc is not None:
            self.blame_inc.store_remove(old)
            self.blame_inc.store_add(new)

    def on_delete(self, location, value) -> None:
        if self.tracker is not None:
            self.tracker.on_delete(location, value)
        if self.ledger is not None:
            self.ledger.on_delete(location, value)
        if self.blame_inc is not None:
            self.blame_inc.store_remove(value)
        if self.prov is not None:
            self.prov.on_delete(location, value)

    # -- root component bookkeeping ----------------------------------------

    def _add_frame(self, frame: Kont) -> None:
        tracker = self.tracker
        if tracker is not None:
            for location in frame.direct_locations():
                tracker.inc_root(location)
            for value in frame.direct_values():
                tracker.inc_value_root(value)
        ledger = self.ledger
        if ledger is not None and frame.env is not None:
            ledger.add_graph(frame.env.graph())
        if self.blame_inc is not None:
            self.blame_inc.frame_add(frame)

    def _remove_frame(self, frame: Kont) -> None:
        tracker = self.tracker
        if tracker is not None:
            for location in frame.direct_locations():
                tracker.dec_root(location)
            for value in frame.direct_values():
                tracker.dec_value_root(value)
        ledger = self.ledger
        if ledger is not None and frame.env is not None:
            ledger.remove_graph(frame.env.graph())
        if self.blame_inc is not None:
            self.blame_inc.frame_remove(frame)

    def _set_env(self, env) -> None:
        if env is self._env:
            return
        tracker, ledger = self.tracker, self.ledger
        old = self._env
        if old is not None:
            if tracker is not None:
                for location in old.location_tuple():
                    tracker.dec_root(location)
            if ledger is not None:
                ledger.remove_graph(old.graph())
        if env is not None:
            if tracker is not None:
                for location in env.location_tuple():
                    tracker.inc_root(location)
            if ledger is not None:
                ledger.add_graph(env.graph())
        self._env = env
        if self.blame_inc is not None and not self.linked:
            self.blame_inc.set_env_size(0 if env is None else len(env))

    def _set_acc(self, acc: Optional[Value]) -> None:
        if acc is self._acc:
            return
        tracker, ledger = self.tracker, self.ledger
        old = self._acc
        if old is not None:
            if tracker is not None:
                tracker.dec_value_root(old)
            if ledger is not None:
                ledger.remove_value(old)
        if acc is not None:
            if tracker is not None:
                tracker.inc_value_root(acc)
            if ledger is not None:
                ledger.add_value(acc)
        self._acc = acc
        if self.blame_inc is not None:
            if old is not None:
                self.blame_inc.acc_remove(old)
            if acc is not None:
                self.blame_inc.acc_add(acc)

    def _set_kont(self, kont: Optional[Kont]) -> None:
        old = self._kont
        if kont is old:
            return
        # Immutable frames share their ancestry: walk both chains to
        # the deepest common frame (O(divergence) via cached depths)
        # and add/remove only the frames above it.
        if kont is None:
            frame = old
            while frame is not None:
                self._remove_frame(frame)
                frame = frame.parent
        elif old is None:
            frame = kont
            while frame is not None:
                self._add_frame(frame)
                frame = frame.parent
        else:
            a, b = old, kont
            while a.depth > b.depth:
                self._remove_frame(a)
                a = a.parent
            while b.depth > a.depth:
                self._add_frame(b)
                b = b.parent
            while a is not b:
                self._remove_frame(a)
                self._add_frame(b)
                a = a.parent
                b = b.parent
        self._kont = kont

    def _polluted(self) -> bool:
        if self.tracker is not None and self.tracker.saw_escape:
            return True
        if self.ledger is not None and self.ledger.saw_escape:
            return True
        return False

    def _enter_fallback(self) -> None:
        """Permanently degrade to the canonical engine (an escape
        procedure has entered the configuration; reference counts no
        longer model the continuation chains it retains)."""
        self.fallback = True
        # Provenance survives the fallback: keep the store hooked so
        # allocation events still reach the sink (the on_* forwarders
        # null-check every other sink).
        if self._store is not None and self.prov is None:
            self._store.tracker = None
        self.tracker = None
        if self.ledger is not None:
            self.ledger.blame = None
            self.ledger = None
        if self.blame_inc is not None:
            self.blame_inc.active = False
            self.blame_inc = None

    # -- engine interface ----------------------------------------------------

    def attach_bus(self, bus) -> None:
        """Publish this engine's reclamations to a trace bus."""
        self.bus = bus
        if self.tracker is not None:
            self.tracker.bus = bus

    def prime(self, state: State) -> int:
        collected = collect(state, self.bus) if self.uses_gc else 0
        self._store = state.store
        if self.tracker is not None:
            self.tracker.prime(state.store)
        if self.ledger is not None:
            for _location, value in state.store.items():
                self.ledger.add_value(value)
        if self.blame_inc is not None:
            for _location, value in state.store.items():
                self.blame_inc.store_add(value)
        if (
            self.tracker is not None
            or self.ledger is not None
            or self.blame_inc is not None
            or self.prov is not None
        ):
            state.store.tracker = self
        self._set_env(state.env)
        self._set_kont(state.kont)
        self._set_acc(state.control if state.is_value else None)
        if self._polluted():
            self._enter_fallback()
        return collected

    def transition(self, configuration: Configuration) -> None:
        if self.fallback:
            return
        if isinstance(configuration, Final):
            self._set_acc(configuration.value)
            self._set_env(None)
            self._set_kont(None)
        else:
            self._set_acc(
                configuration.control if configuration.is_value else None
            )
            self._set_env(configuration.env)
            self._set_kont(configuration.kont)
        if self._polluted():
            self._enter_fallback()

    def measure(self, configuration: Configuration) -> int:
        if not self.linked:
            return configuration_space(configuration, self.fixed_precision)
        if self.fallback:
            return self._fallback_measure(configuration, self.fixed_precision)
        total = configuration.store.linked_structural(self.fixed_precision)
        total += self.ledger.distinct
        if isinstance(configuration, Final):
            total += value_structural(configuration.value, self.fixed_precision)
        else:
            total += configuration.kont.linked_space
            if configuration.is_value:
                total += value_structural(
                    configuration.control, self.fixed_precision
                )
        return total

    def collect(self, state: State, pin_from: Optional[int] = None) -> int:
        if self.fallback:
            return collect(state, self.bus, pin_from)
        tracker = self.tracker
        collected, need_canonical = tracker.reclaim(state.store, pin_from)
        if need_canonical:
            self.canonical_fallbacks += 1
            collected += collect(state, self.bus, pin_from)
            tracker.note_canonical(state.store)
        return collected

    def collect_final(self, final: Final, pin_from: Optional[int] = None) -> int:
        if self.fallback:
            return collect_final(final, self.bus, pin_from)
        tracker = self.tracker
        collected, need_canonical = tracker.reclaim(final.store, pin_from)
        if need_canonical:
            self.canonical_fallbacks += 1
            collected += collect_final(final, self.bus, pin_from)
            tracker.note_canonical(final.store)
        return collected

    def detach(self, store) -> None:
        if store is not None and store.tracker is self:
            store.tracker = None

    # -- integrity audit ----------------------------------------------------

    def audit(self, configuration: Configuration) -> None:
        """checkpoint_spaces-style integrity audit: recompute the
        reference counts and the binding ledger from scratch and
        compare (no-op once the engine has fallen back)."""
        if self.fallback:
            return
        if self.tracker is not None:
            if isinstance(configuration, Final):
                self.tracker.audit(
                    configuration.store, (configuration.value,)
                )
            else:
                values = (
                    (configuration.control,) if configuration.is_value else ()
                )
                self.tracker.audit(
                    configuration.store,
                    values,
                    configuration.env,
                    configuration.kont,
                )
        if self.ledger is not None:
            self.ledger.audit(configuration)


def make_meter(
    machine: Machine,
    linked: bool = False,
    fixed_precision: bool = False,
    engine: str = "delta",
) -> Union[DeltaMeter, ReferenceMeter]:
    if engine == "delta":
        return DeltaMeter(machine, linked, fixed_precision)
    if engine == "generational":
        return DeltaMeter(machine, linked, fixed_precision, generational=True)
    if engine == "reference":
        return ReferenceMeter(machine, linked, fixed_precision)
    raise ValueError(f"unknown metering engine: {engine!r} (want {ENGINES})")


def _engine_stats(meter, engine: str, extra: Optional[dict] = None) -> dict:
    """Observability payload for ``MeterResult.meter_stats``."""
    stats = {
        "engine": engine,
        "canonical_fallbacks": meter.canonical_fallbacks,
        "escape_fallback": bool(meter.fallback),
    }
    tracker = getattr(meter, "tracker", None)
    if tracker is not None:
        stats.update(tracker.stats)
        stats["tenure_floor"] = tracker.tenure_floor
        stats["remembered_size"] = len(tracker.remembered)
        stats["anchors"] = len(tracker.anchors)
    if extra:
        stats.update(extra)
    return stats


def _finalize_metrics(
    metrics, name, accounting, meter, sup_space, steps, restrict_token
):
    from ..machine.environment import pop_restrict_stats

    calls, hits = pop_restrict_stats(restrict_token)
    metrics.counter("restrict_calls", machine=name).inc(calls)
    metrics.counter("restrict_hits", machine=name).inc(hits)
    metrics.counter("engine_canonical_fallbacks", machine=name).inc(
        meter.canonical_fallbacks
    )
    if meter.fallback:
        metrics.counter("engine_escape_fallback", machine=name).inc()
    metrics.gauge("sup_space", machine=name, accounting=accounting).set(
        sup_space
    )
    metrics.counter("steps_total", machine=name).inc(steps)


def run_metered(
    machine: Machine,
    program: Expr,
    argument: Optional[Expr] = None,
    *,
    linked: bool = False,
    fixed_precision: bool = False,
    gc_interval: int = 1,
    gc_when: str = "always",
    step_limit: int = DEFAULT_STEP_LIMIT,
    trace_every: int = 0,
    engine: str = "delta",
    audit_every: int = 0,
    budget: Optional[int] = None,
    trace=None,
    metrics=None,
    blame=None,
    retention=None,
) -> MeterResult:
    """Run *program* (applied to *argument* if given) to a final
    configuration, measuring the supremum of configuration space.

    ``linked`` selects Figure 8 (U_X) accounting instead of Figure 7
    (S_X); ``fixed_precision`` charges every number one word;
    ``trace_every`` > 0 records a (step, space) sample that often.

    ``gc_when="store-change"`` is an ablation: the collector runs only
    after steps that touched the store (allocation or assignment).
    Garbage arising purely from dropped roots then lingers until the
    next store mutation; the store term is constant on the skipped
    steps, so the sup can only grow, and in practice it rarely does
    (a verification test checks this on the corpus).  The default
    ``"always"`` is the canonical Definition 21 schedule.

    ``engine`` selects the metering engine (see the module docstring);
    both report identical numbers.  ``audit_every`` > 0 re-derives the
    delta engine's reference counts and binding ledger from scratch
    every that many collections and raises on drift (testing only).

    ``budget`` caps the consumption ``|P| + sup space``: the first
    measurement that crosses raises :class:`QuotaExceeded` carrying the
    blame census of the killing configuration.  The final
    configuration's pre-GC spike is charged too (the paper's sup ranges
    over every C_i), so a run can be killed on its last step.

    Telemetry (all optional, all observation-only — none changes a
    transition or a measured number):

    - ``trace`` — a :class:`repro.telemetry.bus.TraceBus`; the loop
      publishes every transition, every space measurement, and (via
      the collectors) every reclamation, so an unsampled stream replays
      to exactly this function's reported steps / sup_space /
      collected.
    - ``metrics`` — a :class:`repro.telemetry.metrics.MetricsRegistry`;
      the loop maintains the step mix, kont-depth histogram, GC
      reclaim counters, environment-restrict hit rate, and engine
      fallback counts.
    - ``blame`` — a :class:`repro.telemetry.blame.BlameProfiler`;
      called at every measure point with the configuration and its
      measured space.
    - ``retention`` — a :class:`repro.telemetry.retention.
      RetentionProfiler`; observed at the same measure points as
      ``blame``, plus a ``pre_step`` call before each transition so
      allocation-site provenance can be stamped through the engine's
      store hooks.
    """
    if gc_when not in ("always", "store-change"):
        raise ValueError(f"unknown gc_when: {gc_when!r}")
    # |P| counts the program only, not the input (Definition 23).
    program_size = ast_size(program)

    meter = make_meter(machine, linked, fixed_precision, engine)
    bus = trace
    accounting = "linked" if linked else "flat"
    telemetry = bus is not None or metrics is not None or blame is not None
    if telemetry:
        from ..telemetry.bus import step_kind_label
    if bus is not None:
        meter.attach_bus(bus)
        bus.meta.update(
            machine=machine.name,
            accounting=accounting,
            engine=engine,
            fixed_precision=fixed_precision,
            gc_interval=gc_interval,
        )
    if blame is not None:
        blame.bind(machine.name, linked, fixed_precision)
        attach = getattr(blame, "attach_engine", None)
        if attach is not None:
            attach(meter)
    if retention is not None:
        retention.bind(machine.name, linked, fixed_precision)
        attach = getattr(retention, "attach_engine", None)
        if attach is not None:
            attach(meter)
    restrict_token = None
    if metrics is not None:
        from ..machine.environment import (
            pop_restrict_stats,
            push_restrict_stats,
        )

        restrict_token = push_restrict_stats()
        step_counters: dict = {}
        depth_hist = metrics.histogram("kont_depth", machine=machine.name)
        gc_collections = metrics.counter("gc_collections", machine=machine.name)
        gc_locations = metrics.counter(
            "gc_reclaimed_locations", machine=machine.name
        )
        gc_words = metrics.counter("gc_reclaimed_words", machine=machine.name)

    state = machine.inject(program, argument)
    try:
        if bus is not None:
            bus.emit_phase("prime", True)
        if metrics is not None:
            words_before = state.store.space_bignum
        collected = meter.prime(state)
        if metrics is not None and collected:
            gc_collections.inc()
            gc_locations.inc(collected)
            gc_words.inc(words_before - state.store.space_bignum)
        if bus is not None:
            bus.emit_phase("prime", False)
        last_gc_version = state.store.version
        sup_space = meter.measure(state)
        peak_step = 0
        if budget is not None and program_size + sup_space > budget:
            raise _quota_kill(
                machine, budget, program_size, sup_space, 0,
                linked, fixed_precision, state,
            )
        if bus is not None:
            bus.emit_space(accounting, sup_space, 0)
        if blame is not None:
            blame.observe(state, sup_space, 0)
        if retention is not None:
            retention.observe(state, sup_space, 0)
        samples: List[Tuple[int, int]] = []
        if trace_every:
            samples.append((0, sup_space))

        steps = 0
        step = machine.step
        transition = meter.transition
        measure = meter.measure
        uses_gc = machine.uses_gc_rule
        if bus is not None:
            bus.emit_phase("run", True)
        while True:
            if telemetry:
                if bus is not None:
                    label = bus.emit_step_state(state)
                elif metrics is not None:
                    label = step_kind_label(state)
                if metrics is not None:
                    counter = step_counters.get(label)
                    if counter is None:
                        counter = step_counters[label] = metrics.counter(
                            "steps", machine=machine.name, kind=label
                        )
                    counter.inc()
                    depth_hist.observe(state.kont.depth)
            if retention is not None:
                retention.pre_step(state, steps)
            configuration = step(state)
            steps += 1
            transition(configuration)
            if configuration.is_final:
                # Measure once pre-GC for the sup (the allocation spike
                # is charged), once post-GC for the trace sample.
                space = measure(configuration)
                if bus is not None:
                    bus.emit_space(accounting, space, steps)
                if blame is not None:
                    blame.observe(configuration, space, steps)
                if retention is not None:
                    retention.observe(configuration, space, steps)
                if space > sup_space:
                    sup_space, peak_step = space, steps
                    if budget is not None and program_size + space > budget:
                        raise _quota_kill(
                            machine, budget, program_size, space, steps,
                            linked, fixed_precision, configuration,
                        )
                if uses_gc:
                    if metrics is not None:
                        words_before = configuration.store.space_bignum
                    freed = meter.collect_final(configuration)
                    collected += freed
                    if metrics is not None and freed:
                        gc_collections.inc()
                        gc_locations.inc(freed)
                        gc_words.inc(
                            words_before - configuration.store.space_bignum
                        )
                    if audit_every:
                        meter.audit(configuration)
                if trace_every:
                    samples.append((steps, measure(configuration)))
                if bus is not None:
                    bus.emit_phase("run", False)
                if metrics is not None:
                    _finalize_metrics(
                        metrics,
                        machine.name,
                        accounting,
                        meter,
                        sup_space,
                        steps,
                        restrict_token,
                    )
                    restrict_token = None
                return MeterResult(
                    machine=machine.name,
                    sup_space=sup_space,
                    program_size=program_size,
                    steps=steps,
                    final=configuration,
                    collected=collected,
                    peak_step=peak_step,
                    trace=samples,
                    meter_stats=_engine_stats(meter, engine, {"mode": "exact"}),
                )
            state = configuration
            space = measure(state)
            if bus is not None:
                bus.emit_space(accounting, space, steps)
            if blame is not None:
                blame.observe(state, space, steps)
            if retention is not None:
                retention.observe(state, space, steps)
            if space > sup_space:
                sup_space, peak_step = space, steps
                if budget is not None and program_size + space > budget:
                    raise _quota_kill(
                        machine, budget, program_size, space, steps,
                        linked, fixed_precision, state,
                    )
            if trace_every and steps % trace_every == 0:
                samples.append((steps, space))
            if uses_gc and steps % gc_interval == 0:
                compacted = machine.compact(state)
                if compacted is not state:
                    transition(compacted)
                    state = compacted
                if gc_when == "always" or state.store.version != last_gc_version:
                    if metrics is not None:
                        words_before = state.store.space_bignum
                    freed = meter.collect(state)
                    collected += freed
                    if metrics is not None and freed:
                        gc_collections.inc()
                        gc_locations.inc(freed)
                        gc_words.inc(words_before - state.store.space_bignum)
                    last_gc_version = state.store.version
                    if audit_every and steps % audit_every == 0:
                        meter.audit(state)
            if steps >= step_limit:
                raise StepLimitExceeded(steps)
    finally:
        meter.detach(state.store)
        if restrict_token is not None:
            pop_restrict_stats(restrict_token)


def run_sampled(
    machine: Machine,
    program: Expr,
    argument: Optional[Expr] = None,
    *,
    linked: bool = False,
    fixed_precision: bool = False,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    burst: int = DEFAULT_BURST,
    gc_interval: int = 1,
    step_limit: int = DEFAULT_STEP_LIMIT,
    engine: str = "delta",
    budget: Optional[int] = None,
    checkpoint_hook=None,
) -> MeterResult:
    """The checkpointed sampling meter (``meter="sampled"``): exact sup
    at a fraction of the exact meter's per-step cost.

    The machine trajectory is *identical* to :func:`run_metered`'s —
    the GC rule only removes unreachable locations, locations are never
    reused, and compaction runs on the same cadence — so the answer and
    step count always agree.  Space is handled lazily:

    - Every step reads an O(1) *bound* on the exact pre-GC space: the
      current register/continuation/accumulator terms (exact) plus the
      lazily-collected store's maintained total (a superset of the
      exact store, so the bound can only overestimate).  Under linked
      accounting the ledger's staleness is covered by adding one word
      per location allocated since the last root sync — every binding
      pair created since then uses a fresh location.
    - When the bound exceeds the running sup (or every
      ``checkpoint_every`` transitions, or ``burst`` allocations
      accumulated), the exact measurement is reconstructed
      *retroactively*: sync the engine's roots to the previous
      configuration and apply the GC rule with the current step's
      allocations pinned.  The store is then exactly the pre-GC store
      of the current step, and the same O(1) read is exact.
    - A step that wrote to the store cannot be reconstructed (the
      write may have dropped edges that kept garbage reachable in the
      exact schedule, so the retro-collection could delete cells the
      exact pre-GC store still charges).  Such a step records its
      bound as a *suspect* instead; reclamation soundness is
      unaffected (everything deleted is unreachable in both
      schedules).

    The run is *certified* when every suspect bound is dominated by the
    final sup — then the sup is provably exact: a missed peak at step k
    would have forced ``bound(k) >= space(k) > sup``, triggering either
    an exact trip (contradiction) or an undominated suspect.  An
    uncertified run transparently replays under :func:`run_metered`.
    Either way the returned sup equals the exact meter's.

    ``budget`` caps ``|P| + sup space`` exactly as in
    :func:`run_metered`: every certified measurement (exact trips, the
    no-GC fast path, the degraded fallback schedule) checks on update
    and raises :class:`QuotaExceeded` on crossing.  Suspect bounds
    never kill — they are not certified — but an over-budget peak
    hiding in a suspect leaves the run uncertified, and the exact
    replay (which inherits ``budget``) kills it there.

    ``checkpoint_hook(steps, consumption)`` is called with the running
    certified lower bound at the prime measurement, after every exact
    trip, and every ``checkpoint_every`` steps on the trip-free paths —
    the serving layer's progress heartbeat.
    """
    if engine == "reference":
        raise ValueError(
            "sampled metering needs a delta-family engine for its O(1) "
            "space bound; use engine='delta' or engine='generational'"
        )
    if checkpoint_every <= 0:
        raise ValueError("checkpoint_every must be positive")
    program_size = ast_size(program)
    meter = make_meter(machine, linked, fixed_precision, engine)
    state = machine.inject(program, argument)
    store = state.store
    uses_gc = machine.uses_gc_rule
    compacts = type(machine).compact is not Machine.compact
    fp = fixed_precision
    trips = 0
    checkpoints = 0
    suspects: List[Tuple[int, int]] = []
    try:
        collected = meter.prime(state)
        sup_space = meter.measure(state)
        peak_step = 0
        if budget is not None and program_size + sup_space > budget:
            raise _quota_kill(
                machine, budget, program_size, sup_space, 0,
                linked, fixed_precision, state,
            )
        if checkpoint_hook is not None:
            checkpoint_hook(0, program_size + sup_space)
        sync_loc = store._next_location
        last_collect_loc = sync_loc
        steps = 0
        step = machine.step
        transition = meter.transition
        measure = meter.measure
        while True:
            prev = state
            mut_mark = store.mut_version
            alloc_mark = store._next_location
            configuration = step(state)
            steps += 1
            if configuration.is_final:
                break
            state = configuration
            if meter.fallback:
                # An escape procedure entered the configuration: the
                # tracker is gone, so degrade to the exact per-step
                # schedule (parity with run_metered on such programs).
                transition(state)
                space = measure(state)
                if space > sup_space:
                    sup_space, peak_step = space, steps
                    if budget is not None and program_size + space > budget:
                        raise _quota_kill(
                            machine, budget, program_size, space, steps,
                            linked, fixed_precision, state,
                        )
                if checkpoint_hook is not None and (
                    steps % checkpoint_every == 0
                ):
                    checkpoint_hook(steps, program_size + sup_space)
                if uses_gc and steps % gc_interval == 0:
                    if compacts:
                        compacted = machine.compact(state)
                        if compacted is not state:
                            state = compacted
                    collected += meter.collect(state)
                if steps >= step_limit:
                    raise StepLimitExceeded(steps)
                continue
            if linked:
                bound = measure(state) + (store._next_location - sync_loc)
            else:
                bound = (
                    len(state.env._bindings)
                    + state.kont.flat_space
                    + (store._space_fixed if fp else store._space_bignum)
                )
                if state.is_value:
                    bound += value_space(state.control, fp)
                if not uses_gc:
                    # No GC rule: the lazy store IS the exact store and
                    # every flat term is current, so the bound is the
                    # exact space — no reconstruction ever needed.
                    if bound > sup_space:
                        sup_space, peak_step = bound, steps
                        if budget is not None and (
                            program_size + bound > budget
                        ):
                            raise _quota_kill(
                                machine, budget, program_size, bound, steps,
                                linked, fixed_precision, state,
                            )
                    if checkpoint_hook is not None and (
                        steps % checkpoint_every == 0
                    ):
                        checkpoint_hook(steps, program_size + sup_space)
                    if steps >= step_limit:
                        raise StepLimitExceeded(steps)
                    continue
            due = (
                steps % checkpoint_every == 0
                or store._next_location - last_collect_loc >= burst
            )
            if bound > sup_space or due:
                wrote = uses_gc and store.mut_version != mut_mark
                if wrote and not due:
                    suspects.append((steps, bound))
                else:
                    transition(prev)
                    if uses_gc:
                        collected += meter.collect(prev, pin_from=alloc_mark)
                    transition(state)
                    space = measure(state)
                    if space > sup_space:
                        sup_space, peak_step = space, steps
                        if budget is not None and (
                            program_size + space > budget
                        ):
                            raise _quota_kill(
                                machine, budget, program_size, space, steps,
                                linked, fixed_precision, state,
                            )
                    if wrote and bound > sup_space:
                        # The reading is only a lower bound of the
                        # exact pre-GC space on a write step.
                        suspects.append((steps, bound))
                    sync_loc = store._next_location
                    last_collect_loc = sync_loc
                    trips += 1
                    if due:
                        checkpoints += 1
                    if checkpoint_hook is not None:
                        checkpoint_hook(steps, program_size + sup_space)
            if compacts and steps % gc_interval == 0:
                compacted = machine.compact(state)
                if compacted is not state:
                    state = compacted
            if steps >= step_limit:
                raise StepLimitExceeded(steps)

        final = configuration
        if meter.fallback:
            transition(final)
            space = measure(final)
            if space > sup_space:
                sup_space, peak_step = space, steps
                if budget is not None and program_size + space > budget:
                    raise _quota_kill(
                        machine, budget, program_size, space, steps,
                        linked, fixed_precision, final,
                    )
            if uses_gc:
                collected += meter.collect_final(final)
        else:
            wrote = uses_gc and store.mut_version != mut_mark
            if linked:
                bound = measure(final) + (store._next_location - sync_loc)
            else:
                bound = (
                    store._space_fixed if fp else store._space_bignum
                ) + value_space(final.value, fp)
                if not uses_gc:
                    if bound > sup_space:
                        sup_space, peak_step = bound, steps
                        if budget is not None and (
                            program_size + bound > budget
                        ):
                            raise _quota_kill(
                                machine, budget, program_size, bound, steps,
                                linked, fixed_precision, final,
                            )
                    bound = sup_space  # exact; no suspect, no trip
            if bound > sup_space:
                if wrote:
                    suspects.append((steps, bound))
                    transition(final)
                else:
                    transition(prev)
                    if uses_gc:
                        collected += meter.collect(prev, pin_from=alloc_mark)
                    transition(final)
                    space = measure(final)
                    if space > sup_space:
                        sup_space, peak_step = space, steps
                        if budget is not None and (
                            program_size + space > budget
                        ):
                            raise _quota_kill(
                                machine, budget, program_size, space, steps,
                                linked, fixed_precision, final,
                            )
                    trips += 1
            else:
                transition(final)
            if uses_gc:
                collected += meter.collect_final(final)

        certified = all(bound <= sup_space for _step, bound in suspects)
        stats = _engine_stats(
            meter,
            engine,
            {
                "mode": "sampled",
                "trips": trips,
                "checkpoints": checkpoints,
                "suspect_steps": len(suspects),
                "certified": certified,
                "exact_rerun": False,
                "checkpoint_every": checkpoint_every,
                "burst": burst,
            },
        )
        if not certified:
            meter.detach(store)
            result = run_metered(
                machine,
                program,
                argument,
                linked=linked,
                fixed_precision=fixed_precision,
                gc_interval=gc_interval,
                step_limit=step_limit,
                engine=engine,
                budget=budget,
            )
            stats["certified"] = True
            stats["exact_rerun"] = True
            stats["engine"] = result.meter_stats.get("engine", engine)
            result.meter_stats = stats
            return result
        return MeterResult(
            machine=machine.name,
            sup_space=sup_space,
            program_size=program_size,
            steps=steps,
            final=final,
            collected=collected,
            peak_step=peak_step,
            meter_stats=stats,
        )
    finally:
        meter.detach(store)


def run_to_final(
    machine: Machine,
    program: Expr,
    argument: Optional[Expr] = None,
    *,
    gc_interval: int = 0,
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> Tuple[Final, int]:
    """Run without measuring space (fast path for answer equivalence).

    ``gc_interval=0`` disables collection entirely (the store only
    grows); any positive value collects that often.

    The machine is driven in batches through ``run_steps`` (the fused
    register loop of the live stepper; the per-step loop of the seed
    stepper), sized so collection and compaction still happen exactly
    every ``gc_interval`` transitions.
    """
    state = machine.inject(program, argument)
    steps = 0
    run_steps = machine.run_steps
    batch = gc_interval if gc_interval else step_limit
    while True:
        configuration, taken = run_steps(state, min(batch, step_limit - steps))
        steps += taken
        if configuration.is_final:
            return configuration, steps
        state = configuration
        if gc_interval and steps % gc_interval == 0:
            state = machine.compact(state)
            if machine.uses_gc_rule:
                collect(state)
        if steps >= step_limit:
            raise StepLimitExceeded(steps)
