"""Growth-class fitting for measured space consumption.

The paper's theorems separate space complexity classes: a program
consumes, say, O(N) space on one reference implementation and Θ(N²) on
another.  This module classifies a measured (N, space) series into one
of the growth classes that appear in the paper — constant, logarithmic,
linear, N log N, quadratic, cubic — by least-squares fitting
``space = a * f(N) + b`` for each candidate shape and choosing the
best-fitting shape with a preference for the slowest-growing candidate
among near-ties (so noise never promotes a linear series to N log N).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

GrowthFunction = Callable[[float], float]

#: Candidate shapes, slowest-growing first (the tie-break order).
GROWTH_CLASSES: Dict[str, GrowthFunction] = {
    "O(1)": lambda n: 1.0,
    "O(log n)": lambda n: math.log2(n + 1.0),
    "O(n)": lambda n: float(n),
    "O(n log n)": lambda n: n * math.log2(n + 1.0),
    "O(n^2)": lambda n: float(n) ** 2,
    "O(n^3)": lambda n: float(n) ** 3,
}

#: Relative tolerance within which a slower-growing class wins a tie.
TIE_TOLERANCE = 0.25


@dataclass(frozen=True)
class Fit:
    """One candidate's least-squares fit of space = a*f(n) + b."""

    name: str
    coefficient: float
    intercept: float
    relative_error: float


@dataclass(frozen=True)
class Classification:
    """The chosen growth class plus every candidate's fit."""

    best: Fit
    fits: Tuple[Fit, ...]

    @property
    def name(self) -> str:
        return self.best.name


def _least_squares(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Fit y = a*x + b with a clamped to be nonnegative."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        return 0.0, mean_y
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    a = cov / var_x
    if a < 0:
        a = 0.0
    b = mean_y - a * mean_x
    return a, b


def fit_growth(ns: Sequence[int], spaces: Sequence[int]) -> Classification:
    """Classify the growth of *spaces* as a function of *ns*.

    Requires at least three sample points spanning a factor of two in
    N; with fewer the classification would be meaningless.
    """
    if len(ns) != len(spaces):
        raise ValueError("ns and spaces must have equal length")
    if len(ns) < 3:
        raise ValueError("need at least 3 samples to classify growth")
    if max(ns) < 2 * min(ns):
        raise ValueError("samples should span at least a factor of 2 in N")

    ys = [float(s) for s in spaces]
    scale = max(abs(y) for y in ys) or 1.0
    fits: List[Fit] = []
    for name, shape in GROWTH_CLASSES.items():
        xs = [shape(float(n)) for n in ns]
        a, b = _least_squares(xs, ys)
        residual = math.sqrt(
            sum((a * x + b - y) ** 2 for x, y in zip(xs, ys)) / len(ys)
        )
        fits.append(Fit(name, a, b, residual / scale))

    best = fits[0]
    for fit in fits[1:]:
        if fit.relative_error < best.relative_error * (1.0 - TIE_TOLERANCE):
            best = fit
    return Classification(best=best, fits=tuple(fits))


def growth_name(ns: Sequence[int], spaces: Sequence[int]) -> str:
    """Convenience wrapper returning only the class name."""
    return fit_growth(ns, spaces).name


def ratio_table(
    ns: Sequence[int], spaces: Sequence[int]
) -> List[Tuple[int, int, float]]:
    """(N, space, space/N) rows — handy for eyeballing linearity."""
    return [(n, s, s / n if n else float("inf")) for n, s in zip(ns, spaces)]


def is_bounded(spaces: Sequence[int], tolerance: float = 1.6) -> bool:
    """True when the series looks O(1): max within *tolerance* of min."""
    low, high = min(spaces), max(spaces)
    return high <= low * tolerance + 8
