"""Figure 7: the space consumed by a configuration, flat environments.

::

    space((v, sigma))           = space(v) + space(sigma)
    space((E, rho, kappa, s))   = |Dom rho| + space(kappa) + space(sigma)
    space((v, rho, kappa, s))   = space(v) + |Dom rho| + space(kappa)
                                  + space(sigma)
    space(sigma)                = sum over a in sigma of (1 + space(sigma(a)))

    space(TRUE) = space(FALSE) = space(SYM:I) = 1
    space(VEC:(a0, ..., a_{n-1})) = 1 + n
    space(NUM:z) = 1 + log2 z      (exact integers; see below)
    space(CLOSURE:(a, L, rho)) = 1 + |Dom rho|

    space(halt) = 1
    space(select:(E1, E2, rho, kappa)) = 1 + |Dom rho| + space(kappa)
    space(assign:(I, rho, kappa))      = 1 + |Dom rho| + space(kappa)
    space(push:((E...m), (v...n), pi, rho, kappa))
                                       = 1 + m + n + |Dom rho| + space(kappa)
    space(call:((v...m), kappa))       = 1 + m + space(kappa)
    space(return:(rho, kappa))         = 1 + |Dom rho| + space(kappa)
    space(return:(A, rho, kappa))      = 1 + |Dom rho| + space(kappa)

Values the paper leaves unspecified get the natural extensions: PAIR
costs 3 words (a two-slot VEC), STR costs 1 + its length, immediates
cost 1, and ESCAPE:(a, kappa) costs 1 + space(kappa) — a captured
continuation retains its frames.

``space(NUM:z) = 1 + log2 z`` models unlimited-precision integers; the
``fixed_precision`` flag switches to space(NUM) = 1, which the paper
invokes when noting that its "linear" example programs are O(N log N)
with bignums but O(N) with fixed precision.
"""

from __future__ import annotations

from typing import Union

from ..machine.config import Final, State
from ..machine.values import (
    Closure,
    Escape,
    Num,
    Pair,
    Str,
    Value,
    Vector,
)


def number_space(value: int, fixed_precision: bool = False) -> int:
    """1 + log2(z) for exact integers, pinned to at least 1 bit."""
    if fixed_precision:
        return 1
    return 1 + max(1, abs(value).bit_length())


def value_space(value: Value, fixed_precision: bool = False) -> int:
    """space(v) per Figure 7 (see the module docstring for extensions)."""
    if isinstance(value, Num):
        return number_space(value.value, fixed_precision)
    if isinstance(value, Closure):
        return 1 + len(value.env)
    if isinstance(value, Vector):
        return 1 + value.length
    if isinstance(value, Pair):
        return 3
    if isinstance(value, Escape):
        # Denotational escapes wrap a Python-level continuation with
        # no machine frames; they cost one word.
        return 1 + getattr(value.kont, "flat_space", 0)
    if isinstance(value, Str):
        return 1 + len(value.value)
    return 1


def kont_space(kont) -> int:
    """space(kappa) — cached at construction, O(1)."""
    return kont.flat_space


def store_space(store, fixed_precision: bool = False) -> int:
    """space(sigma) — maintained incrementally by the store, O(1)."""
    return store.space_fixed if fixed_precision else store.space_bignum


def state_space(state: State, fixed_precision: bool = False) -> int:
    """space of an intermediate configuration."""
    total = (
        len(state.env)
        + state.kont.flat_space
        + store_space(state.store, fixed_precision)
    )
    if state.is_value:
        total += value_space(state.control, fixed_precision)
    return total


def final_space(final: Final, fixed_precision: bool = False) -> int:
    """space of a final configuration (v, sigma)."""
    return value_space(final.value, fixed_precision) + store_space(
        final.store, fixed_precision
    )


def configuration_space(
    configuration: Union[State, Final], fixed_precision: bool = False
) -> int:
    """space(C) for either configuration shape."""
    if isinstance(configuration, Final):
        return final_space(configuration, fixed_precision)
    return state_space(configuration, fixed_precision)
