"""Space accounting (Figures 7 and 8) and the S_X / U_X functions."""

from .asymptotics import (
    Classification,
    Fit,
    GROWTH_CLASSES,
    fit_growth,
    growth_name,
    is_bounded,
    ratio_table,
)
from .consumption import (
    Consumption,
    measure,
    measure_all,
    prepare_input,
    prepare_program,
    space_consumption,
    sweep,
)
from .flat import (
    configuration_space,
    final_space,
    kont_space,
    number_space,
    state_space,
    store_space,
    value_space,
)
from .linked import (
    configuration_space_linked,
    final_space_linked,
    state_space_linked,
)
from .meter import DEFAULT_STEP_LIMIT, MeterResult, run_metered, run_to_final
from .safety import (
    ProbeVerdict,
    SafetyReport,
    check_space_safety,
    is_properly_tail_recursive,
)

__all__ = [
    "Classification",
    "Fit",
    "GROWTH_CLASSES",
    "fit_growth",
    "growth_name",
    "is_bounded",
    "ratio_table",
    "Consumption",
    "measure",
    "measure_all",
    "prepare_input",
    "prepare_program",
    "space_consumption",
    "sweep",
    "configuration_space",
    "final_space",
    "kont_space",
    "number_space",
    "state_space",
    "store_space",
    "value_space",
    "configuration_space_linked",
    "final_space_linked",
    "state_space_linked",
    "DEFAULT_STEP_LIMIT",
    "MeterResult",
    "run_metered",
    "run_to_final",
    "ProbeVerdict",
    "SafetyReport",
    "check_space_safety",
    "is_properly_tail_recursive",
]
