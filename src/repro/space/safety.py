"""Empirical space-safety checking.

The paper's introduction: the complexity classes "provide implementors
with a formal basis for determining whether potential optimizations
are safe with respect to proper tail recursion."  An implementation
(or optimization, modeled as a machine variant) is *safe with respect
to* a reference implementation when its space consumption is in
O(S_reference).

This module decides the question empirically on program families: for
each family P, it sweeps N, fits both machines' growth, and flags the
candidate when it grows asymptotically faster than the reference on
any family.  The Theorem 25 separators make sharp probes: they are
precisely the families on which the paper's own machines part ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, Union

from ..programs.separators import SEPARATORS
from ..syntax.ast import Expr
from .asymptotics import GROWTH_CLASSES, fit_growth, is_bounded
from .consumption import space_consumption

Source = Union[str, Expr]

#: Default probe suite: the Theorem 25 separators plus the canonical
#: loop idioms.
DEFAULT_PROBES: Tuple[Tuple[str, str], ...] = tuple(
    (separator.name, separator.source) for separator in SEPARATORS
) + (
    (
        "cps-pingpong",
        "(define (ping n k) (if (zero? n) (k 0) (pong (- n 1) k)))"
        "(define (pong n k) (if (zero? n) (k 1) (ping (- n 1) k)))"
        "(define (f n) (ping n (lambda (x) x)))",
    ),
)

_GRADES = list(GROWTH_CLASSES)


@dataclass(frozen=True)
class ProbeVerdict:
    """The outcome of one probe family."""

    probe: str
    candidate_growth: str
    reference_growth: str
    candidate_series: Tuple[int, ...]
    reference_series: Tuple[int, ...]

    @property
    def safe(self) -> bool:
        """Unsafe when the candidate's fitted class is strictly faster
        growing AND the pointwise candidate/reference ratio actually
        diverges over the measured range.  The second condition guards
        against fitting artifacts at small N: when the reference's own
        asymptotic term has not yet overtaken its constants, its fitted
        class can lag one grade behind even though it dominates the
        candidate pointwise (Theorem 24 guarantees the latter for the
        reference machines)."""
        if _GRADES.index(self.candidate_growth) <= _GRADES.index(
            self.reference_growth
        ):
            return True
        first_ratio = self.candidate_series[0] / self.reference_series[0]
        last_ratio = self.candidate_series[-1] / self.reference_series[-1]
        if last_ratio <= 1.0:
            # Pointwise below the reference over the whole range: a
            # genuine violation must eventually *exceed* it.
            return True
        return last_ratio <= 1.5 * first_ratio


@dataclass(frozen=True)
class SafetyReport:
    """All probe verdicts for a candidate/reference pair."""

    candidate: str
    reference: str
    verdicts: Tuple[ProbeVerdict, ...]

    @property
    def safe(self) -> bool:
        """True when the candidate never grows faster than the
        reference on any probe — the empirical reading of
        'space consumption in O(S_reference)'."""
        return all(verdict.safe for verdict in self.verdicts)

    @property
    def violations(self) -> Tuple[ProbeVerdict, ...]:
        return tuple(v for v in self.verdicts if not v.safe)

    def summary(self) -> str:
        lines = [
            f"candidate {self.candidate!r} vs reference {self.reference!r}: "
            + ("SAFE" if self.safe else "NOT SAFE")
        ]
        for verdict in self.verdicts:
            marker = "ok " if verdict.safe else "VIOLATION"
            lines.append(
                f"  [{marker}] {verdict.probe}: candidate "
                f"{verdict.candidate_growth}, reference "
                f"{verdict.reference_growth}"
            )
        return "\n".join(lines)


def _classify(machine: str, source: str, ns: Sequence[int]) -> Tuple[str, Tuple[int, ...]]:
    # gc_when="store-change" deviates from the canonical schedule by
    # at most a few words (see the GC-ablation benchmark), which can
    # never move a growth class; it makes the audit ~10x faster.
    totals = tuple(
        space_consumption(
            machine, source, str(n),
            fixed_precision=True, gc_when="store-change",
        )
        for n in ns
    )
    if is_bounded(totals):
        return "O(1)", totals
    return fit_growth(ns, totals).name, totals


def check_space_safety(
    candidate: str,
    reference: str = "tail",
    probes: Optional[Iterable[Tuple[str, str]]] = None,
    ns: Sequence[int] = (8, 16, 32, 64),
) -> SafetyReport:
    """Empirically decide whether *candidate*'s space consumption is
    within O(S_reference) on the probe families.

    Machine names come from :data:`repro.machine.variants.ALL_MACHINES`;
    a custom optimization can be probed by registering its machine
    class there or by calling :func:`_classify` directly.
    """
    verdicts = []
    for name, source in (probes if probes is not None else DEFAULT_PROBES):
        candidate_growth, candidate_series = _classify(candidate, source, ns)
        reference_growth, reference_series = _classify(reference, source, ns)
        verdicts.append(
            ProbeVerdict(
                probe=name,
                candidate_growth=candidate_growth,
                reference_growth=reference_growth,
                candidate_series=candidate_series,
                reference_series=reference_series,
            )
        )
    return SafetyReport(
        candidate=candidate, reference=reference, verdicts=tuple(verdicts)
    )


def is_properly_tail_recursive(
    machine: str, ns: Sequence[int] = (8, 16, 32, 64)
) -> bool:
    """Definition 5, empirically: is the machine's space consumption
    within O(S_tail) on the probe suite?"""
    return check_space_safety(machine, "tail", ns=ns).safe
