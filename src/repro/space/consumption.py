"""The space consumption functions S_X and U_X (Definition 23).

::

    S_X(P, D) = |P| + sup { space(C_i) : i in I }

over space-efficient computations with C_0 = ((P D), rho_0, halt,
sigma_0).  The sup over *all* nondeterministic computations is not
computable; a :class:`~repro.machine.policy.Policy` fixes the choices,
and matching the policy across machines realizes exactly the lifted
computations used in the proofs of Theorems 19 and 24 (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple, Union

from ..machine.answer import answer_string
from ..machine.policy import Policy
from ..machine.variants import REFERENCE_MACHINES, make_machine
from ..syntax.ast import Expr
from ..syntax.expander import expand_expression, expand_program
from .meter import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_STEP_LIMIT,
    MeterResult,
    run_metered,
    run_sampled,
)

Source = Union[str, Expr]


def prepare_program(source: Source) -> Expr:
    """Expand program source text (defines + expressions) to Core Scheme."""
    if isinstance(source, Expr):
        return source
    return expand_program(source)


def prepare_input(source: Optional[Source]) -> Optional[Expr]:
    """Expand an input expression to Core Scheme."""
    if source is None or isinstance(source, Expr):
        return source
    return expand_expression(source)


@dataclass
class Consumption:
    """One S_X(P, D) / U_X(P, D) measurement with its provenance."""

    machine: str
    total: int
    sup_space: int
    program_size: int
    steps: int
    answer: str
    linked: bool
    fixed_precision: bool
    #: Engine/meter introspection from the run (engine name, fallback
    #: counts, generational scan/promotion counters, sampled-meter trip
    #: and certification stats) — plain data, travels the sweep
    #: channel; ``repro analyze --meter-audit`` aggregates it.
    meter_stats: Optional[Dict] = None


def measure(
    machine_name: str,
    program: Source,
    argument: Optional[Source] = None,
    *,
    linked: bool = False,
    fixed_precision: bool = False,
    policy: Optional[Policy] = None,
    gc_interval: int = 1,
    gc_when: str = "always",
    step_limit: int = DEFAULT_STEP_LIMIT,
    answer_limit: int = 200,
    engine: str = "delta",
    meter: str = "exact",
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    budget: Optional[int] = None,
    checkpoint_hook=None,
    trace=None,
    metrics=None,
    blame=None,
    retention=None,
) -> Consumption:
    """Measure the Definition 23 space consumption of running
    *program* on *argument* under the named reference implementation.

    ``meter="sampled"`` uses the checkpointed sampling meter
    (:func:`repro.space.meter.run_sampled`, measuring exactly every
    ``checkpoint_every`` transitions plus at allocation-burst
    watermarks) instead of the exact per-step meter; the reported
    numbers are identical, the run is faster.  The sampled loop has no
    per-transition observation points, so it cannot carry telemetry.

    ``trace``/``metrics``/``blame``/``retention`` attach the telemetry
    stack to the metered run (see
    :func:`repro.space.meter.run_metered`).

    ``budget`` caps the consumption under either meter (the run raises
    :class:`repro.space.meter.QuotaExceeded` when its certified lower
    bound crosses); ``checkpoint_hook`` is the sampled meter's progress
    callback and is rejected under the exact meter."""
    if meter not in ("exact", "sampled"):
        raise ValueError(f"unknown meter mode: {meter!r}")
    if checkpoint_hook is not None and meter != "sampled":
        raise ValueError(
            "checkpoint_hook requires meter='sampled' (the exact meter "
            "has no checkpoint cadence)"
        )
    machine = (
        make_machine(machine_name, policy=policy)
        if policy is not None
        else make_machine(machine_name)
    )
    if meter == "sampled":
        if (
            trace is not None
            or metrics is not None
            or blame is not None
            or retention is not None
        ):
            raise ValueError(
                "telemetry requires the exact meter; the sampled loop "
                "has no per-transition observation points"
            )
        if gc_when != "always":
            raise ValueError("sampled metering fixes gc_when='always'")
        result: MeterResult = run_sampled(
            machine,
            prepare_program(program),
            prepare_input(argument),
            linked=linked,
            fixed_precision=fixed_precision,
            checkpoint_every=checkpoint_every,
            gc_interval=gc_interval,
            step_limit=step_limit,
            engine=engine,
            budget=budget,
            checkpoint_hook=checkpoint_hook,
        )
    else:
        result = run_metered(
            machine,
            prepare_program(program),
            prepare_input(argument),
            linked=linked,
            fixed_precision=fixed_precision,
            gc_interval=gc_interval,
            gc_when=gc_when,
            step_limit=step_limit,
            engine=engine,
            budget=budget,
            trace=trace,
            metrics=metrics,
            blame=blame,
            retention=retention,
        )
    return Consumption(
        machine=machine_name,
        total=result.consumption,
        sup_space=result.sup_space,
        program_size=result.program_size,
        steps=result.steps,
        answer=answer_string(result.final, answer_limit),
        linked=linked,
        fixed_precision=fixed_precision,
        meter_stats=result.meter_stats or None,
    )


def space_consumption(
    machine_name: str,
    program: Source,
    argument: Optional[Source] = None,
    **options,
) -> int:
    """S_X(P, D) — or U_X(P, D) with ``linked=True`` — as a number."""
    return measure(machine_name, program, argument, **options).total


def measure_all(
    program: Source,
    argument: Optional[Source] = None,
    machines: Iterable[str] = tuple(REFERENCE_MACHINES),
    **options,
) -> Dict[str, Consumption]:
    """Measure every named machine on the same (P, D) with matched
    policies (each machine gets a fresh policy of the same seed)."""
    program_expr = prepare_program(program)
    argument_expr = prepare_input(argument)
    return {
        name: measure(name, program_expr, argument_expr, **options)
        for name in machines
    }


def sweep(
    machine_name: str,
    program_for: "callable",
    ns: Iterable[int],
    argument_for: Optional["callable"] = None,
    **options,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Measure S_X over a family: ``program_for(n)`` gives the program,
    ``argument_for(n)`` (default ``str(n)``) the input.  Returns
    (ns, totals) ready for :func:`repro.space.asymptotics.fit_growth`."""
    ns = tuple(ns)
    totals = []
    for n in ns:
        program = program_for(n)
        argument = argument_for(n) if argument_for is not None else str(n)
        totals.append(space_consumption(machine_name, program, argument, **options))
    return ns, tuple(totals)
