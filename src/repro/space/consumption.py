"""The space consumption functions S_X and U_X (Definition 23).

::

    S_X(P, D) = |P| + sup { space(C_i) : i in I }

over space-efficient computations with C_0 = ((P D), rho_0, halt,
sigma_0).  The sup over *all* nondeterministic computations is not
computable; a :class:`~repro.machine.policy.Policy` fixes the choices,
and matching the policy across machines realizes exactly the lifted
computations used in the proofs of Theorems 19 and 24 (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple, Union

from ..machine.answer import answer_string
from ..machine.policy import Policy
from ..machine.variants import REFERENCE_MACHINES, make_machine
from ..syntax.ast import Expr
from ..syntax.expander import expand_expression, expand_program
from .meter import DEFAULT_STEP_LIMIT, MeterResult, run_metered

Source = Union[str, Expr]


def prepare_program(source: Source) -> Expr:
    """Expand program source text (defines + expressions) to Core Scheme."""
    if isinstance(source, Expr):
        return source
    return expand_program(source)


def prepare_input(source: Optional[Source]) -> Optional[Expr]:
    """Expand an input expression to Core Scheme."""
    if source is None or isinstance(source, Expr):
        return source
    return expand_expression(source)


@dataclass
class Consumption:
    """One S_X(P, D) / U_X(P, D) measurement with its provenance."""

    machine: str
    total: int
    sup_space: int
    program_size: int
    steps: int
    answer: str
    linked: bool
    fixed_precision: bool


def measure(
    machine_name: str,
    program: Source,
    argument: Optional[Source] = None,
    *,
    linked: bool = False,
    fixed_precision: bool = False,
    policy: Optional[Policy] = None,
    gc_interval: int = 1,
    gc_when: str = "always",
    step_limit: int = DEFAULT_STEP_LIMIT,
    answer_limit: int = 200,
    engine: str = "delta",
    trace=None,
    metrics=None,
    blame=None,
) -> Consumption:
    """Measure the Definition 23 space consumption of running
    *program* on *argument* under the named reference implementation.

    ``trace``/``metrics``/``blame`` attach the telemetry stack to the
    metered run (see :func:`repro.space.meter.run_metered`)."""
    machine = (
        make_machine(machine_name, policy=policy)
        if policy is not None
        else make_machine(machine_name)
    )
    result: MeterResult = run_metered(
        machine,
        prepare_program(program),
        prepare_input(argument),
        linked=linked,
        fixed_precision=fixed_precision,
        gc_interval=gc_interval,
        gc_when=gc_when,
        step_limit=step_limit,
        engine=engine,
        trace=trace,
        metrics=metrics,
        blame=blame,
    )
    return Consumption(
        machine=machine_name,
        total=result.consumption,
        sup_space=result.sup_space,
        program_size=result.program_size,
        steps=result.steps,
        answer=answer_string(result.final, answer_limit),
        linked=linked,
        fixed_precision=fixed_precision,
    )


def space_consumption(
    machine_name: str,
    program: Source,
    argument: Optional[Source] = None,
    **options,
) -> int:
    """S_X(P, D) — or U_X(P, D) with ``linked=True`` — as a number."""
    return measure(machine_name, program, argument, **options).total


def measure_all(
    program: Source,
    argument: Optional[Source] = None,
    machines: Iterable[str] = tuple(REFERENCE_MACHINES),
    **options,
) -> Dict[str, Consumption]:
    """Measure every named machine on the same (P, D) with matched
    policies (each machine gets a fresh policy of the same seed)."""
    program_expr = prepare_program(program)
    argument_expr = prepare_input(argument)
    return {
        name: measure(name, program_expr, argument_expr, **options)
        for name in machines
    }


def sweep(
    machine_name: str,
    program_for: "callable",
    ns: Iterable[int],
    argument_for: Optional["callable"] = None,
    **options,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Measure S_X over a family: ``program_for(n)`` gives the program,
    ``argument_for(n)`` (default ``str(n)``) the input.  Returns
    (ns, totals) ready for :func:`repro.space.asymptotics.fit_growth`."""
    ns = tuple(ns)
    totals = []
    for n in ns:
        program = program_for(n)
        argument = argument_for(n) if argument_for is not None else str(n)
        totals.append(space_consumption(machine_name, program, argument, **options))
    return ns, tuple(totals)
