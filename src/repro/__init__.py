"""repro — reference implementations and space-complexity classes from
William D. Clinger, "Proper Tail Recursion and Space Efficiency"
(PLDI 1998).

Quickstart::

    from repro import run, space_consumption

    result = run("(define (f n) (if (zero? n) 0 (f (- n 1))))", "1000")
    print(result.answer)            # => 0

    s_tail = space_consumption("tail", LOOP, "1000")
    s_gc = space_consumption("gc", LOOP, "1000")
    assert s_tail <= s_gc           # Theorem 24

The package layers:

- :mod:`repro.reader` — S-expression reader;
- :mod:`repro.syntax` — Core Scheme AST, macro expander, tail-call
  analysis (Definitions 1-2), free variables, section 12 validation;
- :mod:`repro.machine` — the CEKS machine family I_tail, I_gc,
  I_stack, I_evlis, I_free, I_sfs (+ a section 14 'bigloo' variant);
- :mod:`repro.space` — Figure 7/8 space accounting, the meter, the
  S_X / U_X consumption functions, growth-class fitting;
- :mod:`repro.analysis` — the Figure 2 static-frequency study;
- :mod:`repro.programs` — the paper's example and separator programs
  plus a classic-benchmark corpus;
- :mod:`repro.harness` — one-call run/compare/sweep drivers and table
  rendering;
- :mod:`repro.telemetry` — structured trace bus, metrics registry,
  space-blame profiler, and JSONL/Chrome-trace exporters.
"""

import sys as _sys

# Deeply nested programs (Theorem 26's P_N family) and the recursive
# expander need more Python stack than the default.
if _sys.getrecursionlimit() < 20000:
    _sys.setrecursionlimit(20000)

from .harness.runner import RunResult, compare_machines, run  # noqa: E402
from .machine.variants import (  # noqa: E402
    ALL_MACHINES,
    REFERENCE_MACHINES,
    make_machine,
)
from .space.asymptotics import fit_growth, growth_name  # noqa: E402
from .space.consumption import (  # noqa: E402
    Consumption,
    measure,
    measure_all,
    space_consumption,
    sweep,
)
from .space.safety import (  # noqa: E402
    SafetyReport,
    check_space_safety,
    is_properly_tail_recursive,
)
from .syntax.expander import expand_expression, expand_program  # noqa: E402
from .telemetry import (  # noqa: E402
    BlameProfiler,
    MetricsRegistry,
    TraceBus,
    blame_configuration,
    replay,
    trace_run,
)

__version__ = "1.0.0"

__all__ = [
    "RunResult",
    "compare_machines",
    "run",
    "ALL_MACHINES",
    "REFERENCE_MACHINES",
    "make_machine",
    "fit_growth",
    "growth_name",
    "Consumption",
    "measure",
    "measure_all",
    "space_consumption",
    "sweep",
    "SafetyReport",
    "check_space_safety",
    "is_properly_tail_recursive",
    "expand_expression",
    "expand_program",
    "BlameProfiler",
    "MetricsRegistry",
    "TraceBus",
    "blame_configuration",
    "replay",
    "trace_run",
    "__version__",
]
