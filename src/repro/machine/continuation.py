"""Continuations (Figure 4) and the return variants of sections 8.

::

    kappa ::= halt
            | select:(E1, E2, rho, kappa)
            | assign:(I, rho, kappa)
            | push:((E, ...), (v, ...), pi, rho, kappa)
            | call:((v, ...), kappa)
            | return:(rho, kappa)              -- I_gc (section 8)
            | return:(A, rho, kappa)           -- I_stack (section 8)

Continuations are immutable.  Each caches its Figure 7 flat space on
first read (space is defined structurally, so the child adds O(1) to
the cached space of its parent), making per-step metering O(1)
amortized in the continuation component.  The fill is lazy because
unmetered runs never read the totals: constructors store None and the
``flat_space`` property walks down to the nearest cached ancestor and
fills the gap iteratively (never recursively — CPS-deep chains must
not overflow the Python stack).  The same lazy caching covers the
Figure 8 *structural* words (``linked_space`` — bindings are counted
globally by the meter).  The chain ``depth`` stays eager — it is one
addition, and the incremental meter leans on it to diff two
continuations in time proportional to their divergence rather than
their length.

Note Figure 7 counts values parked in push/call continuations as one
word each (the ``m`` and ``n`` of ``1 + m + n + |Dom rho| + space(kappa)``);
their heap parts are counted in the store, which the values keep
reachable.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..syntax.ast import Expr
from .environment import Environment
from .values import Location, Value


class Kont:
    """Base class for continuations."""

    # ``_ceiling`` is a lazily-filled cache (left unset by every
    # constructor: an unset slot raises AttributeError, which the sole
    # consumer catches): the largest store location rooted by this
    # frame or any ancestor, used by the I_stack frame-pop fast path
    # together with the monotonic-location invariant.  Continuations
    # are immutable and locations are never reused, so the cached value
    # can never go stale.
    __slots__ = (
        "parent", "env", "_flat_space", "_linked_space", "depth", "_ceiling",
    )

    parent: Optional["Kont"]
    env: Optional[Environment]
    depth: int

    @property
    def flat_space(self) -> int:
        """space(kappa) under Figure 7, lazily cached per frame."""
        fs = self._flat_space
        if fs is not None:
            return fs
        pending = []
        k = self
        while fs is None:
            pending.append(k)
            k = k.parent
            fs = k._flat_space
        for frame in reversed(pending):
            fs += frame._flat_own()
            frame._flat_space = fs
        return fs

    @property
    def linked_space(self) -> int:
        """Figure 8 structural words of kappa, lazily cached per frame."""
        ls = self._linked_space
        if ls is not None:
            return ls
        pending = []
        k = self
        while ls is None:
            pending.append(k)
            k = k.parent
            ls = k._linked_space
        for frame in reversed(pending):
            ls += frame._linked_own()
            frame._linked_space = ls
        return ls

    def direct_locations(self) -> Tuple[Location, ...]:
        """Locations held directly by this frame (excluding parents)."""
        if self.env is not None:
            return self.env.location_tuple()
        return ()

    def direct_values(self) -> Tuple[Value, ...]:
        """Values parked in this frame (push/call); GC traverses them."""
        return ()


class Halt(Kont):
    """halt — the initial continuation."""

    __slots__ = ()

    def __init__(self):
        self.parent = None
        self.env = None
        # Halt anchors the lazy chains: its totals are always cached.
        self._flat_space = 1
        self._linked_space = 1
        self.depth = 0

    def __repr__(self) -> str:
        return "halt"


class Select(Kont):
    """select:(E1, E2, rho, kappa) — choose a conditional arm."""

    __slots__ = ("consequent", "alternative")

    def __init__(
        self, consequent: Expr, alternative: Expr, env: Environment, parent: Kont
    ):
        self.consequent = consequent
        self.alternative = alternative
        self.env = env
        self.parent = parent
        self._flat_space = None
        self._linked_space = None
        self.depth = parent.depth + 1

    def _flat_own(self) -> int:
        return 1 + len(self.env._bindings)

    def _linked_own(self) -> int:
        return 1

    def __repr__(self) -> str:
        return f"select:(|rho|={len(self.env)}, {self.parent!r})"


class Assign(Kont):
    """assign:(I, rho, kappa) — store the R-value into rho(I)."""

    __slots__ = ("name",)

    def __init__(self, name: str, env: Environment, parent: Kont):
        self.name = name
        self.env = env
        self.parent = parent
        self._flat_space = None
        self._linked_space = None
        self.depth = parent.depth + 1

    def _flat_own(self) -> int:
        return 1 + len(self.env._bindings)

    def _linked_own(self) -> int:
        return 1

    def __repr__(self) -> str:
        return f"assign:({self.name}, {self.parent!r})"


class Push(Kont):
    """push:((E, ...), (v, ...), pi, rho, kappa).

    ``pending`` holds the expressions still to evaluate, in evaluation
    order; ``done`` holds the values already computed, in evaluation
    order; ``order`` is the permutation pi — ``order[j]`` is the
    original position (0 = operator) of the j-th expression evaluated.

    ``site`` is the Call expression this push belongs to.  It is a
    code pointer (like the expressions already in the frame), costs no
    space under Figure 7, and exists so the dynamic tail-call census
    can attribute each runtime call to its syntactic site.  ``plan``
    is the interned :class:`~repro.compiler.prepass.CallPlan` of
    (site, order) — another code pointer, letting the push rule read
    precomputed pending suffixes and their free variables instead of
    re-slicing; it is derived data and never affects the semantics.
    """

    __slots__ = ("pending", "done", "order", "site", "plan")

    def __init__(
        self,
        pending: Tuple[Expr, ...],
        done: Tuple[Value, ...],
        order: Tuple[int, ...],
        env: Environment,
        parent: Kont,
        site=None,
        plan=None,
    ):
        self.pending = pending
        self.done = done
        self.order = order
        self.env = env
        self.parent = parent
        self.site = site
        self.plan = plan
        self._flat_space = None
        self._linked_space = None
        self.depth = parent.depth + 1

    def _flat_own(self) -> int:
        return (
            1 + len(self.pending) + len(self.done) + len(self.env._bindings)
        )

    def _linked_own(self) -> int:
        return 1 + len(self.pending) + len(self.done)

    def direct_values(self) -> Tuple[Value, ...]:
        return self.done

    def __repr__(self) -> str:
        return (
            f"push:(m={len(self.pending)}, n={len(self.done)}, "
            f"|rho|={len(self.env)}, {self.parent!r})"
        )


class CallK(Kont):
    """call:((v1, ..., vm), kappa) — apply the operator to the args.

    ``site`` carries the originating Call expression for the dynamic
    census (a code pointer; no space under Figure 7)."""

    __slots__ = ("args", "site")

    def __init__(self, args: Tuple[Value, ...], parent: Kont, site=None):
        self.args = args
        self.env = None
        self.parent = parent
        self.site = site
        self._flat_space = None
        self._linked_space = None
        self.depth = parent.depth + 1

    def _flat_own(self) -> int:
        return 1 + len(self.args)

    def _linked_own(self) -> int:
        return 1 + len(self.args)

    def direct_values(self) -> Tuple[Value, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"call:(m={len(self.args)}, {self.parent!r})"


class Return(Kont):
    """return:(rho, kappa) — the I_gc frame created for every call."""

    __slots__ = ()

    def __init__(self, env: Environment, parent: Kont):
        self.env = env
        self.parent = parent
        self._flat_space = None
        self._linked_space = None
        self.depth = parent.depth + 1

    def _flat_own(self) -> int:
        return 1 + len(self.env._bindings)

    def _linked_own(self) -> int:
        return 1

    def __repr__(self) -> str:
        return f"return:(|rho|={len(self.env)}, {self.parent!r})"


class ReturnStack(Kont):
    """return:(A, rho, kappa) — the I_stack frame.

    ``frame`` is the deletion set A: locations retained (as roots)
    until this frame returns, then deleted if that creates no dangling
    pointer.  Figure 7 charges return:(A, rho, kappa) the same words as
    return:(rho, kappa); A itself is free.
    """

    __slots__ = ("frame",)

    def __init__(
        self, frame: Tuple[Location, ...], env: Environment, parent: Kont
    ):
        self.frame = frame
        self.env = env
        self.parent = parent
        self._flat_space = None
        self._linked_space = None
        self.depth = parent.depth + 1

    def _flat_own(self) -> int:
        # Figure 7 charges return:(A, rho, kappa) the same words as
        # return:(rho, kappa); A itself is free.
        return 1 + len(self.env._bindings)

    def _linked_own(self) -> int:
        return 1

    def direct_locations(self) -> Tuple[Location, ...]:
        env_locations = self.env.location_tuple() if self.env else ()
        return env_locations + self.frame

    def __repr__(self) -> str:
        return f"return-stack:(|A|={len(self.frame)}, {self.parent!r})"


HALT = Halt()


def chain(kont: Optional[Kont]) -> Iterator[Kont]:
    """Iterate a continuation and all its ancestors (iteratively, so
    CPS-deep chains cannot overflow the Python stack)."""
    while kont is not None:
        yield kont
        kont = kont.parent


def depth(kont: Kont) -> int:
    """Number of frames in the continuation (halt included)."""
    return sum(1 for _ in chain(kont))
