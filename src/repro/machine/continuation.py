"""Continuations (Figure 4) and the return variants of sections 8.

::

    kappa ::= halt
            | select:(E1, E2, rho, kappa)
            | assign:(I, rho, kappa)
            | push:((E, ...), (v, ...), pi, rho, kappa)
            | call:((v, ...), kappa)
            | return:(rho, kappa)              -- I_gc (section 8)
            | return:(A, rho, kappa)           -- I_stack (section 8)

Continuations are immutable.  Each caches its Figure 7 flat space at
construction (space is defined structurally, so the child adds O(1) to
the cached space of its parent), making per-step metering O(1) in the
continuation component.  The same construction-time caching covers the
Figure 8 *structural* words (``linked_space`` — bindings are counted
globally by the meter) and the chain ``depth``, which lets the
incremental meter diff two continuations in time proportional to their
divergence rather than their length.

Note Figure 7 counts values parked in push/call continuations as one
word each (the ``m`` and ``n`` of ``1 + m + n + |Dom rho| + space(kappa)``);
their heap parts are counted in the store, which the values keep
reachable.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..syntax.ast import Expr
from .environment import Environment
from .values import Location, Value


class Kont:
    """Base class for continuations."""

    __slots__ = ("parent", "env", "flat_space", "linked_space", "depth")

    parent: Optional["Kont"]
    env: Optional[Environment]
    flat_space: int
    linked_space: int
    depth: int

    def direct_locations(self) -> Tuple[Location, ...]:
        """Locations held directly by this frame (excluding parents)."""
        if self.env is not None:
            return self.env.location_tuple()
        return ()

    def direct_values(self) -> Tuple[Value, ...]:
        """Values parked in this frame (push/call); GC traverses them."""
        return ()


class Halt(Kont):
    """halt — the initial continuation."""

    __slots__ = ()

    def __init__(self):
        self.parent = None
        self.env = None
        self.flat_space = 1
        self.linked_space = 1
        self.depth = 0

    def __repr__(self) -> str:
        return "halt"


class Select(Kont):
    """select:(E1, E2, rho, kappa) — choose a conditional arm."""

    __slots__ = ("consequent", "alternative")

    def __init__(
        self, consequent: Expr, alternative: Expr, env: Environment, parent: Kont
    ):
        self.consequent = consequent
        self.alternative = alternative
        self.env = env
        self.parent = parent
        self.flat_space = 1 + len(env._bindings) + parent.flat_space
        self.linked_space = 1 + parent.linked_space
        self.depth = parent.depth + 1

    def __repr__(self) -> str:
        return f"select:(|rho|={len(self.env)}, {self.parent!r})"


class Assign(Kont):
    """assign:(I, rho, kappa) — store the R-value into rho(I)."""

    __slots__ = ("name",)

    def __init__(self, name: str, env: Environment, parent: Kont):
        self.name = name
        self.env = env
        self.parent = parent
        self.flat_space = 1 + len(env._bindings) + parent.flat_space
        self.linked_space = 1 + parent.linked_space
        self.depth = parent.depth + 1

    def __repr__(self) -> str:
        return f"assign:({self.name}, {self.parent!r})"


class Push(Kont):
    """push:((E, ...), (v, ...), pi, rho, kappa).

    ``pending`` holds the expressions still to evaluate, in evaluation
    order; ``done`` holds the values already computed, in evaluation
    order; ``order`` is the permutation pi — ``order[j]`` is the
    original position (0 = operator) of the j-th expression evaluated.

    ``site`` is the Call expression this push belongs to.  It is a
    code pointer (like the expressions already in the frame), costs no
    space under Figure 7, and exists so the dynamic tail-call census
    can attribute each runtime call to its syntactic site.  ``plan``
    is the interned :class:`~repro.compiler.prepass.CallPlan` of
    (site, order) — another code pointer, letting the push rule read
    precomputed pending suffixes and their free variables instead of
    re-slicing; it is derived data and never affects the semantics.
    """

    __slots__ = ("pending", "done", "order", "site", "plan")

    def __init__(
        self,
        pending: Tuple[Expr, ...],
        done: Tuple[Value, ...],
        order: Tuple[int, ...],
        env: Environment,
        parent: Kont,
        site=None,
        plan=None,
    ):
        self.pending = pending
        self.done = done
        self.order = order
        self.env = env
        self.parent = parent
        self.site = site
        self.plan = plan
        self.flat_space = (
            1 + len(pending) + len(done) + len(env._bindings) + parent.flat_space
        )
        self.linked_space = (
            1 + len(pending) + len(done) + parent.linked_space
        )
        self.depth = parent.depth + 1

    def direct_values(self) -> Tuple[Value, ...]:
        return self.done

    def __repr__(self) -> str:
        return (
            f"push:(m={len(self.pending)}, n={len(self.done)}, "
            f"|rho|={len(self.env)}, {self.parent!r})"
        )


class CallK(Kont):
    """call:((v1, ..., vm), kappa) — apply the operator to the args.

    ``site`` carries the originating Call expression for the dynamic
    census (a code pointer; no space under Figure 7)."""

    __slots__ = ("args", "site")

    def __init__(self, args: Tuple[Value, ...], parent: Kont, site=None):
        self.args = args
        self.env = None
        self.parent = parent
        self.site = site
        self.flat_space = 1 + len(args) + parent.flat_space
        self.linked_space = 1 + len(args) + parent.linked_space
        self.depth = parent.depth + 1

    def direct_values(self) -> Tuple[Value, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"call:(m={len(self.args)}, {self.parent!r})"


class Return(Kont):
    """return:(rho, kappa) — the I_gc frame created for every call."""

    __slots__ = ()

    def __init__(self, env: Environment, parent: Kont):
        self.env = env
        self.parent = parent
        self.flat_space = 1 + len(env._bindings) + parent.flat_space
        self.linked_space = 1 + parent.linked_space
        self.depth = parent.depth + 1

    def __repr__(self) -> str:
        return f"return:(|rho|={len(self.env)}, {self.parent!r})"


class ReturnStack(Kont):
    """return:(A, rho, kappa) — the I_stack frame.

    ``frame`` is the deletion set A: locations retained (as roots)
    until this frame returns, then deleted if that creates no dangling
    pointer.  Figure 7 charges return:(A, rho, kappa) the same words as
    return:(rho, kappa); A itself is free.
    """

    __slots__ = ("frame",)

    def __init__(
        self, frame: Tuple[Location, ...], env: Environment, parent: Kont
    ):
        self.frame = frame
        self.env = env
        self.parent = parent
        self.flat_space = 1 + len(env._bindings) + parent.flat_space
        self.linked_space = 1 + parent.linked_space
        self.depth = parent.depth + 1

    def direct_locations(self) -> Tuple[Location, ...]:
        env_locations = self.env.location_tuple() if self.env else ()
        return env_locations + self.frame

    def __repr__(self) -> str:
        return f"return-stack:(|A|={len(self.frame)}, {self.parent!r})"


HALT = Halt()


def chain(kont: Optional[Kont]) -> Iterator[Kont]:
    """Iterate a continuation and all its ancestors (iteratively, so
    CPS-deep chains cannot overflow the Python stack)."""
    while kont is not None:
        yield kont
        kont = kont.parent


def depth(kont: Kont) -> int:
    """Number of frames in the continuation (halt included)."""
    return sum(1 for _ in chain(kont))
