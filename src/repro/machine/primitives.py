"""Standard procedures for the initial environment rho_0 / store sigma_0.

Section 12: "Let rho_0 and sigma_0 be some fixed initial environment
and initial store that contain Scheme's standard procedures, as
described in Section 6 of [IEE91]."  The core transition rules "must be
supplemented by additional rules, mainly for primitive procedures,
which are not specified in this paper" — this module supplies them.

Primitive conventions:

- an *ordinary* primitive maps ``(machine, store, args) -> Value`` and
  may allocate (cons, list, make-vector, ...);
- a *control* primitive (call/cc, apply) maps
  ``(machine, state, args, kont) -> Configuration`` and may transfer
  control;
- domain errors raise :class:`PrimitiveError`, i.e. the machine is
  stuck, matching the paper's treatment of program errors.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .environment import Environment
from .errors import PrimitiveError
from .store import Store
from operator import eq, ge, gt, le, lt

from .values import (
    Boolean,
    Char,
    Closure,
    Escape,
    FALSE,
    NIL,
    Num,
    Pair,
    Primop,
    Str,
    Sym,
    TRUE,
    UNSPECIFIED,
    Value,
    Vector,
    _SMALL_NUMS,
    is_true,
    make_boolean,
)

_REGISTRY: Dict[str, Primop] = {}


def primitive(
    name: str,
    arity: Optional[Tuple[int, Optional[int]]] = None,
    controls: bool = False,
    aliases: Tuple[str, ...] = (),
):
    """Register a primitive under *name* (and *aliases*)."""

    def register(proc: Callable) -> Callable:
        primop = Primop(name, proc, arity=arity, controls=controls)
        _REGISTRY[name] = primop
        for alias in aliases:
            _REGISTRY[alias] = Primop(alias, proc, arity=arity, controls=controls)
        return proc

    return register


# ---------------------------------------------------------------------------
# Argument checking helpers
# ---------------------------------------------------------------------------


def check_num(name: str, value: Value) -> int:
    if not isinstance(value, Num):
        raise PrimitiveError(f"{name}: not a number: {value!r}")
    return value.value


def check_pair(name: str, value: Value) -> Pair:
    if not isinstance(value, Pair):
        raise PrimitiveError(f"{name}: not a pair: {value!r}")
    return value


def check_vector(name: str, value: Value) -> Vector:
    if not isinstance(value, Vector):
        raise PrimitiveError(f"{name}: not a vector: {value!r}")
    return value


def check_index(name: str, length: int, value: Value) -> int:
    index = check_num(name, value)
    if not 0 <= index < length:
        raise PrimitiveError(f"{name}: index {index} out of range [0, {length})")
    return index


# ---------------------------------------------------------------------------
# List plumbing
# ---------------------------------------------------------------------------


def make_list(store: Store, values: List[Value]) -> Value:
    """Allocate a fresh proper list holding *values*."""
    result: Value = NIL
    for value in reversed(values):
        car_loc = store.alloc(value)
        cdr_loc = store.alloc(result)
        result = Pair(car_loc, cdr_loc)
    return result


def iter_list(store: Store, value: Value, what: str = "list") -> Iterator[Value]:
    """Iterate the elements of a proper list, detecting cycles."""
    seen = set()
    current = value
    while current is not NIL:
        if not isinstance(current, Pair):
            raise PrimitiveError(f"{what}: improper list")
        key = (current.car_loc, current.cdr_loc)
        if key in seen:
            raise PrimitiveError(f"{what}: cyclic list")
        seen.add(key)
        yield store.read(current.car_loc)
        current = store.read(current.cdr_loc)


def list_values(store: Store, value: Value, what: str = "list") -> List[Value]:
    return list(iter_list(store, value, what))


# ---------------------------------------------------------------------------
# Numbers
# ---------------------------------------------------------------------------


@primitive("+", arity=(0, None))
def prim_add(machine, store, args):
    if len(args) == 2:
        a0, a1 = args
        # Exact-class fast path (the hot binary case); subclasses and
        # non-numbers fall through to the checked path, whose error
        # order (left operand first) the fast path cannot reach.
        if a0.__class__ is Num and a1.__class__ is Num:
            z = a0.value + a1.value
            return _SMALL_NUMS[z] if -1024 <= z <= 1024 else Num(z)
        return Num(check_num("+", a0) + check_num("+", a1))
    return Num(sum(check_num("+", a) for a in args))


@primitive("-", arity=(1, None))
def prim_sub(machine, store, args):
    if len(args) == 2:
        a0, a1 = args
        if a0.__class__ is Num and a1.__class__ is Num:
            z = a0.value - a1.value
            return _SMALL_NUMS[z] if -1024 <= z <= 1024 else Num(z)
        return Num(check_num("-", a0) - check_num("-", a1))
    first = check_num("-", args[0])
    if len(args) == 1:
        return Num(-first)
    for arg in args[1:]:
        first -= check_num("-", arg)
    return Num(first)


@primitive("*", arity=(0, None))
def prim_mul(machine, store, args):
    product = 1
    for arg in args:
        product *= check_num("*", arg)
    return Num(product)


@primitive("quotient", arity=(2, 2))
def prim_quotient(machine, store, args):
    numerator = check_num("quotient", args[0])
    denominator = check_num("quotient", args[1])
    if denominator == 0:
        raise PrimitiveError("quotient: division by zero")
    quotient = abs(numerator) // abs(denominator)
    if (numerator < 0) != (denominator < 0):
        quotient = -quotient
    return Num(quotient)


@primitive("remainder", arity=(2, 2))
def prim_remainder(machine, store, args):
    numerator = check_num("remainder", args[0])
    denominator = check_num("remainder", args[1])
    if denominator == 0:
        raise PrimitiveError("remainder: division by zero")
    remainder = abs(numerator) % abs(denominator)
    return Num(-remainder if numerator < 0 else remainder)


@primitive("modulo", arity=(2, 2))
def prim_modulo(machine, store, args):
    numerator = check_num("modulo", args[0])
    denominator = check_num("modulo", args[1])
    if denominator == 0:
        raise PrimitiveError("modulo: division by zero")
    return Num(numerator % denominator)


@primitive("abs", arity=(1, 1))
def prim_abs(machine, store, args):
    return Num(abs(check_num("abs", args[0])))


@primitive("min", arity=(1, None))
def prim_min(machine, store, args):
    return Num(min(check_num("min", a) for a in args))


@primitive("max", arity=(1, None))
def prim_max(machine, store, args):
    return Num(max(check_num("max", a) for a in args))


@primitive("expt", arity=(2, 2))
def prim_expt(machine, store, args):
    base = check_num("expt", args[0])
    power = check_num("expt", args[1])
    if power < 0:
        raise PrimitiveError("expt: negative exponent on exact integer")
    return Num(base ** power)


@primitive("gcd", arity=(0, None))
def prim_gcd(machine, store, args):
    from math import gcd

    result = 0
    for arg in args:
        result = gcd(result, check_num("gcd", arg))
    return Num(result)


def _comparison(name: str, compare) -> Callable:
    def prim(machine, store, args):
        if len(args) == 2:
            a0, a1 = args
            if a0.__class__ is Num and a1.__class__ is Num:
                return TRUE if compare(a0.value, a1.value) else FALSE
            # Same checks in the same order as the general chain below.
            return make_boolean(
                compare(check_num(name, a0), check_num(name, a1))
            )
        numbers = [check_num(name, a) for a in args]
        return make_boolean(
            all(compare(a, b) for a, b in zip(numbers, numbers[1:]))
        )

    return prim


# operator.* rather than lambdas: the C comparison avoids a Python
# frame per primitive application.
primitive("=", arity=(2, None))(_comparison("=", eq))
primitive("<", arity=(2, None))(_comparison("<", lt))
primitive(">", arity=(2, None))(_comparison(">", gt))
primitive("<=", arity=(2, None))(_comparison("<=", le))
primitive(">=", arity=(2, None))(_comparison(">=", ge))


@primitive("zero?", arity=(1, 1))
def prim_zero_p(machine, store, args):
    return make_boolean(check_num("zero?", args[0]) == 0)


@primitive("positive?", arity=(1, 1))
def prim_positive_p(machine, store, args):
    return make_boolean(check_num("positive?", args[0]) > 0)


@primitive("negative?", arity=(1, 1))
def prim_negative_p(machine, store, args):
    return make_boolean(check_num("negative?", args[0]) < 0)


@primitive("even?", arity=(1, 1))
def prim_even_p(machine, store, args):
    return make_boolean(check_num("even?", args[0]) % 2 == 0)


@primitive("odd?", arity=(1, 1))
def prim_odd_p(machine, store, args):
    return make_boolean(check_num("odd?", args[0]) % 2 != 0)


@primitive("random", arity=(1, 1))
def prim_random(machine, store, args):
    bound = check_num("random", args[0])
    if bound <= 0:
        raise PrimitiveError(f"random: bound must be positive, got {bound}")
    return Num(machine.policy.random_integer(bound))


# ---------------------------------------------------------------------------
# Type predicates and equivalence
# ---------------------------------------------------------------------------


@primitive("not", arity=(1, 1))
def prim_not(machine, store, args):
    return make_boolean(not is_true(args[0]))


_TYPE_TESTS = {
    "number?": lambda v: isinstance(v, Num),
    "symbol?": lambda v: isinstance(v, Sym),
    "boolean?": lambda v: isinstance(v, Boolean),
    "pair?": lambda v: isinstance(v, Pair),
    "null?": lambda v: v is NIL,
    "vector?": lambda v: isinstance(v, Vector),
    "string?": lambda v: isinstance(v, Str),
    "char?": lambda v: isinstance(v, Char),
    "procedure?": lambda v: isinstance(v, (Closure, Primop, Escape)),
}

for _name, _test in _TYPE_TESTS.items():

    def _make(test):
        def prim(machine, store, args):
            return make_boolean(test(args[0]))

        return prim

    primitive(_name, arity=(1, 1))(_make(_test))


def eqv_values(a: Value, b: Value) -> bool:
    """eqv? — identity for heap values, value equality for immediates.

    Closures and escapes compare by their tag location, the paper's
    reason for tagging them ("A bug in the design of Scheme requires
    that a location be allocated to tag the closure").
    """
    if a is b:
        return True
    if isinstance(a, Num) and isinstance(b, Num):
        return a.value == b.value
    if isinstance(a, Sym) and isinstance(b, Sym):
        return a.name == b.name
    if isinstance(a, Char) and isinstance(b, Char):
        return a.value == b.value
    if isinstance(a, Boolean) and isinstance(b, Boolean):
        return a.value == b.value
    if isinstance(a, Pair) and isinstance(b, Pair):
        return a.car_loc == b.car_loc and a.cdr_loc == b.cdr_loc
    if isinstance(a, Vector) and isinstance(b, Vector):
        return a.locations_ == b.locations_
    if isinstance(a, Closure) and isinstance(b, Closure):
        return a.tag == b.tag
    if isinstance(a, Escape) and isinstance(b, Escape):
        return a.tag == b.tag
    return False


@primitive("eqv?", arity=(2, 2), aliases=("eq?",))
def prim_eqv_p(machine, store, args):
    return make_boolean(eqv_values(args[0], args[1]))


def equal_values(store: Store, a: Value, b: Value) -> bool:
    """equal? — structural equality through the store (iterative, with
    a visited set so shared/cyclic structure terminates)."""
    pending = [(a, b)]
    visited = set()
    while pending:
        left, right = pending.pop()
        if eqv_values(left, right):
            continue
        if isinstance(left, Str) and isinstance(right, Str):
            if left.value != right.value:
                return False
            continue
        if isinstance(left, Pair) and isinstance(right, Pair):
            key = (left.car_loc, left.cdr_loc, right.car_loc, right.cdr_loc)
            if key in visited:
                continue
            visited.add(key)
            pending.append((store.read(left.car_loc), store.read(right.car_loc)))
            pending.append((store.read(left.cdr_loc), store.read(right.cdr_loc)))
            continue
        if isinstance(left, Vector) and isinstance(right, Vector):
            if left.length != right.length:
                return False
            key = (left.locations_, right.locations_)
            if key in visited:
                continue
            visited.add(key)
            for la, lb in zip(left.locations_, right.locations_):
                pending.append((store.read(la), store.read(lb)))
            continue
        return False
    return True


@primitive("equal?", arity=(2, 2))
def prim_equal_p(machine, store, args):
    return make_boolean(equal_values(store, args[0], args[1]))


# ---------------------------------------------------------------------------
# Pairs and lists
# ---------------------------------------------------------------------------


@primitive("cons", arity=(2, 2))
def prim_cons(machine, store, args):
    return Pair(store.alloc(args[0]), store.alloc(args[1]))


@primitive("car", arity=(1, 1))
def prim_car(machine, store, args):
    return store.read(check_pair("car", args[0]).car_loc)


@primitive("cdr", arity=(1, 1))
def prim_cdr(machine, store, args):
    return store.read(check_pair("cdr", args[0]).cdr_loc)


@primitive("set-car!", arity=(2, 2))
def prim_set_car(machine, store, args):
    store.write(check_pair("set-car!", args[0]).car_loc, args[1])
    return UNSPECIFIED


@primitive("set-cdr!", arity=(2, 2))
def prim_set_cdr(machine, store, args):
    store.write(check_pair("set-cdr!", args[0]).cdr_loc, args[1])
    return UNSPECIFIED


def _compound_accessor(name: str, path: str) -> Callable:
    """caar/cadr/... : path is applied right to left ('ad' = car of cdr)."""

    def prim(machine, store, args):
        value = args[0]
        for step in reversed(path):
            pair = check_pair(name, value)
            value = store.read(pair.car_loc if step == "a" else pair.cdr_loc)
        return value

    return prim


for _path in ("aa", "ad", "da", "dd", "aaa", "aad", "ada", "add",
              "daa", "dad", "dda", "ddd"):
    _accessor_name = "c" + _path + "r"
    primitive(_accessor_name, arity=(1, 1))(
        _compound_accessor(_accessor_name, _path)
    )


@primitive("list", arity=(0, None))
def prim_list(machine, store, args):
    return make_list(store, list(args))


@primitive("length", arity=(1, 1))
def prim_length(machine, store, args):
    return Num(sum(1 for _ in iter_list(store, args[0], "length")))


@primitive("list-ref", arity=(2, 2))
def prim_list_ref(machine, store, args):
    index = check_num("list-ref", args[1])
    if index < 0:
        raise PrimitiveError(f"list-ref: negative index {index}")
    for position, value in enumerate(iter_list(store, args[0], "list-ref")):
        if position == index:
            return value
    raise PrimitiveError(f"list-ref: index {index} past end of list")


@primitive("list-tail", arity=(2, 2))
def prim_list_tail(machine, store, args):
    count = check_num("list-tail", args[1])
    current = args[0]
    for _ in range(count):
        current = store.read(check_pair("list-tail", current).cdr_loc)
    return current


@primitive("append", arity=(0, None))
def prim_append(machine, store, args):
    if not args:
        return NIL
    result = args[-1]
    for lst in reversed(args[:-1]):
        values = list_values(store, lst, "append")
        for value in reversed(values):
            result = Pair(store.alloc(value), store.alloc(result))
    return result


@primitive("reverse", arity=(1, 1))
def prim_reverse(machine, store, args):
    result: Value = NIL
    for value in iter_list(store, args[0], "reverse"):
        result = Pair(store.alloc(value), store.alloc(result))
    return result


def _member(name: str, same) -> Callable:
    def prim(machine, store, args):
        target = args[0]
        current = args[1]
        seen = set()
        while current is not NIL:
            pair = check_pair(name, current)
            key = (pair.car_loc, pair.cdr_loc)
            if key in seen:
                raise PrimitiveError(f"{name}: cyclic list")
            seen.add(key)
            if same(store, store.read(pair.car_loc), target):
                return current
            current = store.read(pair.cdr_loc)
        return FALSE

    return prim


primitive("memq", arity=(2, 2))(_member("memq", lambda s, a, b: eqv_values(a, b)))
primitive("memv", arity=(2, 2))(_member("memv", lambda s, a, b: eqv_values(a, b)))
primitive("member", arity=(2, 2))(_member("member", equal_values))


def _assoc(name: str, same) -> Callable:
    def prim(machine, store, args):
        target = args[0]
        for entry in iter_list(store, args[1], name):
            pair = check_pair(name, entry)
            if same(store, store.read(pair.car_loc), target):
                return entry
        return FALSE

    return prim


primitive("assq", arity=(2, 2))(_assoc("assq", lambda s, a, b: eqv_values(a, b)))
primitive("assv", arity=(2, 2))(_assoc("assv", lambda s, a, b: eqv_values(a, b)))
primitive("assoc", arity=(2, 2))(_assoc("assoc", equal_values))


# ---------------------------------------------------------------------------
# Vectors
# ---------------------------------------------------------------------------


@primitive("make-vector", arity=(1, 2))
def prim_make_vector(machine, store, args):
    length = check_num("make-vector", args[0])
    if length < 0:
        raise PrimitiveError(f"make-vector: negative length {length}")
    fill = args[1] if len(args) == 2 else UNSPECIFIED
    return Vector(store.alloc_many(fill for _ in range(length)))


@primitive("vector", arity=(0, None))
def prim_vector(machine, store, args):
    return Vector(store.alloc_many(args))


@primitive("vector-length", arity=(1, 1))
def prim_vector_length(machine, store, args):
    return Num(check_vector("vector-length", args[0]).length)


@primitive("vector-ref", arity=(2, 2))
def prim_vector_ref(machine, store, args):
    vector = check_vector("vector-ref", args[0])
    index = check_index("vector-ref", vector.length, args[1])
    return store.read(vector.locations_[index])


@primitive("vector-set!", arity=(3, 3))
def prim_vector_set(machine, store, args):
    vector = check_vector("vector-set!", args[0])
    index = check_index("vector-set!", vector.length, args[1])
    store.write(vector.locations_[index], args[2])
    return UNSPECIFIED


@primitive("vector-fill!", arity=(2, 2))
def prim_vector_fill(machine, store, args):
    vector = check_vector("vector-fill!", args[0])
    for location in vector.locations_:
        store.write(location, args[1])
    return UNSPECIFIED


# ---------------------------------------------------------------------------
# Strings and symbols (minimal: enough for the corpus programs)
# ---------------------------------------------------------------------------


@primitive("string-length", arity=(1, 1))
def prim_string_length(machine, store, args):
    if not isinstance(args[0], Str):
        raise PrimitiveError(f"string-length: not a string: {args[0]!r}")
    return Num(len(args[0].value))


@primitive("string-append", arity=(0, None))
def prim_string_append(machine, store, args):
    parts = []
    for arg in args:
        if not isinstance(arg, Str):
            raise PrimitiveError(f"string-append: not a string: {arg!r}")
        parts.append(arg.value)
    return Str("".join(parts))


@primitive("string=?", arity=(2, None))
def prim_string_eq(machine, store, args):
    texts = []
    for arg in args:
        if not isinstance(arg, Str):
            raise PrimitiveError(f"string=?: not a string: {arg!r}")
        texts.append(arg.value)
    return make_boolean(all(a == b for a, b in zip(texts, texts[1:])))


@primitive("symbol->string", arity=(1, 1))
def prim_symbol_to_string(machine, store, args):
    if not isinstance(args[0], Sym):
        raise PrimitiveError(f"symbol->string: not a symbol: {args[0]!r}")
    return Str(args[0].name)


@primitive("number->string", arity=(1, 1))
def prim_number_to_string(machine, store, args):
    return Str(str(check_num("number->string", args[0])))


# ---------------------------------------------------------------------------
# Control
# ---------------------------------------------------------------------------


@primitive(
    "call-with-current-continuation",
    arity=(1, 1),
    controls=True,
    aliases=("call/cc",),
)
def prim_call_cc(machine, state, args, kont):
    tag = state.store.alloc(UNSPECIFIED)
    state.store.note_escape()
    escape = Escape(tag, kont)
    return machine.apply_procedure(state, args[0], (escape,), kont)


@primitive("apply", arity=(2, None), controls=True)
def prim_apply(machine, state, args, kont):
    operator = args[0]
    spread = list(args[1:-1])
    spread.extend(list_values(state.store, args[-1], "apply"))
    return machine.apply_procedure(state, operator, tuple(spread), kont)


@primitive("error", arity=(1, None))
def prim_error(machine, store, args):
    raise PrimitiveError("error: " + " ".join(repr(a) for a in args))


# ---------------------------------------------------------------------------
# Arity-specialized fast entries (Primop.proc1 / Primop.proc2)
# ---------------------------------------------------------------------------
#
# Each must behave exactly like the registered proc on an args tuple of
# that length — same result, same errors, same error texts (callers
# have already checked arity).  Only statically-counted callers (the
# gen-3 generated code) use these; everything else goes through proc.


def _fast(name: str, proc1=None, proc2=None) -> None:
    for op in (_REGISTRY[name],):
        if proc1 is not None:
            op.proc1 = proc1
        if proc2 is not None:
            op.proc2 = proc2


def _add2(machine, store, a, b):
    if a.__class__ is Num and b.__class__ is Num:
        z = a.value + b.value
        return _SMALL_NUMS[z] if -1024 <= z <= 1024 else Num(z)
    return Num(check_num("+", a) + check_num("+", b))


def _sub1(machine, store, a):
    return Num(-check_num("-", a))


def _sub2(machine, store, a, b):
    if a.__class__ is Num and b.__class__ is Num:
        z = a.value - b.value
        return _SMALL_NUMS[z] if -1024 <= z <= 1024 else Num(z)
    return Num(check_num("-", a) - check_num("-", b))


def _mul2(machine, store, a, b):
    if a.__class__ is Num and b.__class__ is Num:
        z = a.value * b.value
        return _SMALL_NUMS[z] if -1024 <= z <= 1024 else Num(z)
    return Num(check_num("*", a) * check_num("*", b))


def _cmp_fast(name, compare):
    def p2(machine, store, a, b):
        if a.__class__ is Num and b.__class__ is Num:
            return TRUE if compare(a.value, b.value) else FALSE
        return make_boolean(
            compare(check_num(name, a), check_num(name, b))
        )

    return p2


def _car1(machine, store, a):
    return store.read(check_pair("car", a).car_loc)


def _cdr1(machine, store, a):
    return store.read(check_pair("cdr", a).cdr_loc)


def _cons2(machine, store, a, b):
    return Pair(store.alloc(a), store.alloc(b))


def _not1(machine, store, a):
    return TRUE if a is FALSE else FALSE


def _null1(machine, store, a):
    return TRUE if a is NIL else FALSE


def _pair1(machine, store, a):
    return TRUE if isinstance(a, Pair) else FALSE


def _number1(machine, store, a):
    return TRUE if isinstance(a, Num) else FALSE


def _zero1(machine, store, a):
    return TRUE if check_num("zero?", a) == 0 else FALSE


def _eqv2(machine, store, a, b):
    return TRUE if eqv_values(a, b) else FALSE


_fast("+", proc2=_add2)
_fast("-", proc1=_sub1, proc2=_sub2)
_fast("*", proc2=_mul2)
for _n, _c in (("=", eq), ("<", lt), (">", gt), ("<=", le), (">=", ge)):
    _fast(_n, proc2=_cmp_fast(_n, _c))
_fast("car", proc1=_car1)
_fast("cdr", proc1=_cdr1)
_fast("cons", proc2=_cons2)
_fast("not", proc1=_not1)
_fast("null?", proc1=_null1)
_fast("pair?", proc1=_pair1)
_fast("number?", proc1=_number1)
_fast("zero?", proc1=_zero1)
_fast("eqv?", proc2=_eqv2)
_fast("eq?", proc2=_eqv2)


# ---------------------------------------------------------------------------
# Initial environment
# ---------------------------------------------------------------------------


def primitive_names() -> Tuple[str, ...]:
    """Names bound in rho_0 (for the section 12 validator)."""
    return tuple(sorted(_REGISTRY))


def make_initial_environment(store: Store, names=None) -> Environment:
    """Allocate sigma_0's cells for the standard procedures and return
    rho_0 binding each name to its cell.

    With *names*, only those standard procedures are bound — the space
    meter trims rho_0 to the program's free variables by default, so
    that per-frame |Dom rho| constants (~1 word per standard procedure
    in scope, in every saved environment) do not drown the asymptotic
    effects at small N.  Trimming changes S_X(P, D) by a per-program
    constant only; ``names=None`` gives the full fixed rho_0.
    """
    if names is None:
        wanted = sorted(_REGISTRY)
    else:
        wanted = sorted(name for name in names if name in _REGISTRY)
    bindings = {}
    for name in wanted:
        bindings[name] = store.alloc(_REGISTRY[name])
    return Environment(bindings)
