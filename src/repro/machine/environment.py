"""Environments: finite functions from identifiers to locations.

Environments are immutable; ``extend`` and ``restrict`` return new
environments (flat copies).  The linked-environment space accounting of
Figure 8 views an environment as its *graph* — the set of
(identifier, location) pairs — which :meth:`Environment.graph` exposes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from .values import Location
from .store import _CELL_WORDS
from .values import Closure, Num

#: Restrict-memoization statistics, enabled by the metrics layer: None
#: (the default — one global load + is-None check per restrict call)
#: or a ``[calls, hits, previous]`` list.  ``previous`` lets enabling
#: nest: the innermost collector wins, and popping restores the outer
#: one.
_restrict_stats = None


def push_restrict_stats():
    """Start counting restrict calls/hits; returns the token to pass
    to :func:`pop_restrict_stats`."""
    global _restrict_stats
    stats = [0, 0, _restrict_stats]
    _restrict_stats = stats
    return stats


def pop_restrict_stats(stats):
    """Stop counting for *stats*; returns ``(calls, hits)``."""
    global _restrict_stats
    if _restrict_stats is stats:
        _restrict_stats = stats[2]
    return stats[0], stats[1]


class Environment:
    """An immutable finite map Identifier -> Location.

    Environments are flat dicts, but frames built by :meth:`extend`
    additionally remember *how* they were built — the parent
    environment, the parameter tuple, and the location tuple — forming
    a frame chain that mirrors the runtime lambda nesting.  The gen-2
    stepper's quickened variable lookup walks this chain by a static
    lexical address instead of hashing the name; the chain is advisory
    (``restrict`` copies and hand-built environments carry none), and
    semantics never depend on it: ``graph()``, GC reachability, and the
    space accountings read only ``_bindings``.
    """

    __slots__ = (
        "_bindings",
        "_graph",
        "_location_tuple",
        "_restrict_cache",
        "_parent",
        "_frame_names",
        "_frame_locs",
    )

    def __init__(self, bindings: Optional[Dict[str, Location]] = None):
        self._bindings: Dict[str, Location] = dict(bindings) if bindings else {}
        self._graph: Optional[FrozenSet[Tuple[str, Location]]] = None
        self._location_tuple: Optional[Tuple[Location, ...]] = None
        self._restrict_cache: Optional[Dict[FrozenSet[str], "Environment"]] = None
        self._parent: Optional["Environment"] = None
        self._frame_names: Optional[Tuple[str, ...]] = None
        self._frame_locs: Optional[Tuple[Location, ...]] = None

    @staticmethod
    def _owned(bindings: Dict[str, Location]) -> "Environment":
        """Wrap a freshly built dict without re-copying it (private to
        ``extend``/``restrict``, whose comprehension results are never
        aliased elsewhere)."""
        env = Environment.__new__(Environment)
        env._bindings = bindings
        env._graph = None
        env._location_tuple = None
        env._restrict_cache = None
        env._parent = None
        env._frame_names = None
        env._frame_locs = None
        return env

    # -- lookups ------------------------------------------------------------

    def lookup(self, name: str) -> Optional[Location]:
        """The location bound to *name*, or None (caller decides stuck)."""
        return self._bindings.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self) -> Iterator[str]:
        return iter(self._bindings)

    def names(self) -> Iterable[str]:
        return self._bindings.keys()

    def location_values(self) -> Iterable[Location]:
        """All locations in the range of the environment (GC roots)."""
        return self._bindings.values()

    def location_tuple(self) -> Tuple[Location, ...]:
        """The range as a tuple *with multiplicity* (one entry per
        binding), cached — the incremental meter diffs root sets by
        counting each binding's location separately."""
        if self._location_tuple is None:
            self._location_tuple = tuple(self._bindings.values())
        return self._location_tuple

    def graph(self) -> FrozenSet[Tuple[str, Location]]:
        """graph(rho): the environment as a set of bindings (section 13)."""
        if self._graph is None:
            self._graph = frozenset(self._bindings.items())
        return self._graph

    # -- constructors ---------------------------------------------------------

    def extend(
        self, names: Tuple[str, ...], locations: Tuple[Location, ...]
    ) -> "Environment":
        """rho[I1, ..., In -> b1, ..., bn] as a flat copy."""
        n = len(names)
        if n != len(locations):
            raise ValueError("names and locations must have equal length")
        bindings = dict(self._bindings)
        if n == 1:
            bindings[names[0]] = locations[0]
        else:
            bindings.update(zip(names, locations))
        # _owned's body, inlined: extend is the hottest environment
        # constructor (one call per procedure application).
        env = Environment.__new__(Environment)
        env._bindings = bindings
        env._graph = None
        env._location_tuple = None
        env._restrict_cache = None
        env._parent = self
        env._frame_names = names
        env._frame_locs = locations
        return env

    def extend_alloc1(self, store, names, value) -> "Environment":
        """``self.extend(names, (store.alloc(value),))`` in one call.

        The gen-3 generated code applies a known unary lambda with
        this: one allocation and one frame, with the alloc's
        bookkeeping inlined for the common observer-free store (the
        arithmetic is the same as :meth:`Store.alloc`; a store with a
        tracker or reference counts takes the composed path so the
        observers see the identical mutation sequence).  ``names``
        must be a 1-tuple — callers bind exactly the lambda's
        parameter list, whose arity they have already checked."""
        if store.tracker is None and store._rc is None:
            location = store._next_location
            store._next_location = location + 1
            store._cells[location] = value
            cls = value.__class__
            if cls is Num:
                bits = abs(value.value).bit_length()
                bignum = 2 + (bits if bits > 1 else 1)
                store._space_bignum += bignum
                store._space_fixed += 2
                store._linked_bignum += bignum
                store._linked_fixed += 2
            elif cls is Closure:
                flat = 2 + len(value.env._bindings)
                store._space_bignum += flat
                store._space_fixed += flat
                store._linked_bignum += 2
                store._linked_fixed += 2
            else:
                words = _CELL_WORDS.get(cls)
                if words is not None:
                    store._space_bignum += words
                    store._space_fixed += words
                    store._linked_bignum += words
                    store._linked_fixed += words
                else:
                    store._add_space(value, 1)
            store.version += 1
        else:
            location = store.alloc(value)
        bindings = dict(self._bindings)
        bindings[names[0]] = location
        env = Environment.__new__(Environment)
        env._bindings = bindings
        env._graph = None
        env._location_tuple = None
        env._restrict_cache = None
        env._parent = self
        env._frame_names = names
        env._frame_locs = (location,)
        return env

    def extend_alloc(self, store, names, values) -> "Environment":
        """``self.extend(names, store.alloc_many(values))`` with the
        extend inlined (the allocated tuple stays readable off the new
        environment's ``_frame_locs``).  Callers guarantee ``names``
        and ``values`` have equal length (the arity was checked before
        entering the application)."""
        if store.tracker is None and store._rc is None:
            # alloc_many's observer-free batch, inlined (same end
            # state; the batch is equivalent to the per-value sequence
            # by construction).
            cells = store._cells
            location = store._next_location
            out = []
            for value in values:
                cells[location] = value
                cls = value.__class__
                if cls is Num:
                    bits = abs(value.value).bit_length()
                    bignum = 2 + (bits if bits > 1 else 1)
                    store._space_bignum += bignum
                    store._space_fixed += 2
                    store._linked_bignum += bignum
                    store._linked_fixed += 2
                elif cls is Closure:
                    flat = 2 + len(value.env._bindings)
                    store._space_bignum += flat
                    store._space_fixed += flat
                    store._linked_bignum += 2
                    store._linked_fixed += 2
                else:
                    words = _CELL_WORDS.get(cls)
                    if words is not None:
                        store._space_bignum += words
                        store._space_fixed += words
                        store._linked_bignum += words
                        store._linked_fixed += words
                    else:
                        store._add_space(value, 1)
                out.append(location)
                location += 1
            store._next_location = location
            store.version += len(out)
            locations = tuple(out)
        else:
            locations = store.alloc_many(values)
        bindings = dict(self._bindings)
        if len(names) == 1:
            bindings[names[0]] = locations[0]
        else:
            bindings.update(zip(names, locations))
        env = Environment.__new__(Environment)
        env._bindings = bindings
        env._graph = None
        env._location_tuple = None
        env._restrict_cache = None
        env._parent = self
        env._frame_names = names
        env._frame_locs = locations
        return env

    def restrict(self, names: Iterable[str]) -> "Environment":
        """rho | names — keep only the bindings whose name is in *names*.

        Memoized per (environment, name set): the stepper's restriction
        hooks pass interned frozensets (one per program point), so the
        hot loop's restrictions hit this cache whenever the same
        environment object recurs.  When *names* covers every binding
        the environment itself is returned without building a probe
        dict first (frozensets cache their hash, so repeated lookups
        cost O(1) after the first)."""
        stats = _restrict_stats
        if stats is not None:
            stats[0] += 1
        bindings = self._bindings
        if not bindings:
            if stats is not None:
                stats[1] += 1  # the trivial short-circuit counts as a hit
            return self
        wanted = names if type(names) is frozenset else frozenset(names)
        cache = self._restrict_cache
        if cache is None:
            cache = self._restrict_cache = {}
        else:
            result = cache.get(wanted)
            if result is not None:
                if stats is not None:
                    stats[1] += 1
                return result
        if len(wanted) >= len(bindings):
            if wanted.issuperset(bindings):
                result = self
            else:
                result = Environment._owned(
                    {name: loc for name, loc in bindings.items() if name in wanted}
                )
        else:
            result = Environment._owned(
                {name: bindings[name] for name in wanted if name in bindings}
            )
        cache[wanted] = result
        return result

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}->{v}" for k, v in sorted(self._bindings.items()))
        return f"Env{{{inner}}}"


EMPTY_ENV = Environment()
