"""Environments: finite functions from identifiers to locations.

Environments are immutable; ``extend`` and ``restrict`` return new
environments (flat copies).  The linked-environment space accounting of
Figure 8 views an environment as its *graph* — the set of
(identifier, location) pairs — which :meth:`Environment.graph` exposes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from .values import Location


class Environment:
    """An immutable finite map Identifier -> Location."""

    __slots__ = ("_bindings", "_graph", "_location_tuple")

    def __init__(self, bindings: Optional[Dict[str, Location]] = None):
        self._bindings: Dict[str, Location] = dict(bindings) if bindings else {}
        self._graph: Optional[FrozenSet[Tuple[str, Location]]] = None
        self._location_tuple: Optional[Tuple[Location, ...]] = None

    # -- lookups ------------------------------------------------------------

    def lookup(self, name: str) -> Optional[Location]:
        """The location bound to *name*, or None (caller decides stuck)."""
        return self._bindings.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self) -> Iterator[str]:
        return iter(self._bindings)

    def names(self) -> Iterable[str]:
        return self._bindings.keys()

    def location_values(self) -> Iterable[Location]:
        """All locations in the range of the environment (GC roots)."""
        return self._bindings.values()

    def location_tuple(self) -> Tuple[Location, ...]:
        """The range as a tuple *with multiplicity* (one entry per
        binding), cached — the incremental meter diffs root sets by
        counting each binding's location separately."""
        if self._location_tuple is None:
            self._location_tuple = tuple(self._bindings.values())
        return self._location_tuple

    def graph(self) -> FrozenSet[Tuple[str, Location]]:
        """graph(rho): the environment as a set of bindings (section 13)."""
        if self._graph is None:
            self._graph = frozenset(self._bindings.items())
        return self._graph

    # -- constructors ---------------------------------------------------------

    def extend(
        self, names: Tuple[str, ...], locations: Tuple[Location, ...]
    ) -> "Environment":
        """rho[I1, ..., In -> b1, ..., bn] as a flat copy."""
        if len(names) != len(locations):
            raise ValueError("names and locations must have equal length")
        bindings = dict(self._bindings)
        bindings.update(zip(names, locations))
        return Environment(bindings)

    def restrict(self, names: Iterable[str]) -> "Environment":
        """rho | names — keep only the bindings whose name is in *names*."""
        wanted = names if isinstance(names, (set, frozenset)) else frozenset(names)
        if len(wanted) >= len(self._bindings):
            kept = {
                name: loc for name, loc in self._bindings.items() if name in wanted
            }
            if len(kept) == len(self._bindings):
                return self
            return Environment(kept)
        return Environment(
            {name: self._bindings[name] for name in wanted if name in self._bindings}
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}->{v}" for k, v in sorted(self._bindings.items()))
        return f"Env{{{inner}}}"


EMPTY_ENV = Environment()
