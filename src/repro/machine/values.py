"""Runtime values (the Value grammar of Figure 4).

::

    v ::= TRUE | FALSE | NUM:z | SYM:I | VEC:(a0, ...) | ...
        | UNSPECIFIED | UNDEFINED | PRIMOP:phi
        | ESCAPE:(a, kappa) | CLOSURE:(a, L, rho)

This reproduction adds the immediate values NIL, CHAR, STR and the
heap value PAIR (two locations), which the paper leaves to "additional
rules, mainly for primitive procedures, which are not specified".

Values never contain other values directly — compound data (vectors,
pairs) hold *locations*, so sharing and mutation go through the store
exactly as in the paper.  Locations are plain integers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..syntax.ast import Lambda
    from .continuation import Kont
    from .environment import Environment

Location = int


class Value:
    """Base class for runtime values."""

    __slots__ = ()

    def locations(self) -> Tuple[Location, ...]:
        """Locations this value refers to directly (GC edges)."""
        return ()


class _Singleton(Value):
    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return self._name

    def __reduce__(self):
        # Singletons are identity-compared throughout the machines
        # (``v is NIL``, ``v is TRUE``); pickled copies would silently
        # break eq?/null?/truthiness, so unpickling must resolve back
        # to the canonical module-level instance.
        return (_singleton, (self._name,))


class Boolean(Value):
    """TRUE or FALSE; use the module-level singletons."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"

    def __reduce__(self):
        return (_boolean, (self.value,))


TRUE = Boolean(True)
FALSE = Boolean(False)
UNSPECIFIED = _Singleton("UNSPECIFIED")
UNDEFINED = _Singleton("UNDEFINED")
NIL = _Singleton("NIL")
EOF = _Singleton("EOF")

_SINGLETONS = {s._name: s for s in (UNSPECIFIED, UNDEFINED, NIL, EOF)}


def _singleton(name: str) -> "_Singleton":
    return _SINGLETONS[name]


def _boolean(value: bool) -> Boolean:
    return TRUE if value else FALSE


class Num(Value):
    """NUM:z — an exact integer of unlimited precision."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def __repr__(self) -> str:
        return f"NUM:{self.value}"


#: Interned NUM values for small results: ``_SMALL_NUMS[z]`` is
#: ``NUM:z`` for -1024 <= z <= 1024 (the tail of the list holds the
#: negatives, so plain Python indexing resolves both signs).  Sharing
#: is sound because numbers are immutable and nothing observes NUM
#: identity — ``eqv?`` compares by value and the space accountings
#: charge per *location*, not per object.  The arithmetic primitives
#: return pool members for in-range results instead of allocating.
_SMALL_NUMS = tuple(
    Num(z) for z in list(range(0, 1025)) + list(range(-1024, 0))
)


class Sym(Value):
    """SYM:I — a symbol."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"SYM:{self.name}"


class Char(Value):
    """A character value."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __repr__(self) -> str:
        return f"CHAR:{self.value!r}"


class Str(Value):
    """An immutable string value (immediate in this reproduction)."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __repr__(self) -> str:
        return f"STR:{self.value!r}"


class Vector(Value):
    """VEC:(a0, ..., a_{n-1}) — n locations holding the elements."""

    __slots__ = ("locations_",)

    def __init__(self, locations: Tuple[Location, ...]):
        self.locations_ = tuple(locations)

    def locations(self) -> Tuple[Location, ...]:
        return self.locations_

    @property
    def length(self) -> int:
        return len(self.locations_)

    def __repr__(self) -> str:
        return f"VEC:{self.locations_}"


class Pair(Value):
    """A cons cell: two locations holding car and cdr."""

    __slots__ = ("car_loc", "cdr_loc")

    def __init__(self, car_loc: Location, cdr_loc: Location):
        self.car_loc = car_loc
        self.cdr_loc = cdr_loc

    def locations(self) -> Tuple[Location, ...]:
        return (self.car_loc, self.cdr_loc)

    def __repr__(self) -> str:
        return f"PAIR:({self.car_loc}, {self.cdr_loc})"


class Closure(Value):
    """CLOSURE:(a, L, rho).

    ``tag`` is the location allocated to identify the closure — the
    paper: "A bug in the design of Scheme requires that a location be
    allocated to tag the closure [Ram94]" (it makes ``eqv?`` on
    procedures observable).
    """

    __slots__ = ("tag", "lam", "env", "_locs")

    def __init__(self, tag: Location, lam: "Lambda", env: "Environment"):
        self.tag = tag
        self.lam = lam
        self.env = env
        self._locs: Optional[Tuple[Location, ...]] = None

    def locations(self) -> Tuple[Location, ...]:
        locs = self._locs
        if locs is None:
            locs = self._locs = (self.tag,) + self.env.location_tuple()
        return locs

    def __repr__(self) -> str:
        return f"CLOSURE:(tag={self.tag}, params={self.lam.params})"


class Escape(Value):
    """ESCAPE:(a, kappa) — a captured continuation (from call/cc)."""

    __slots__ = ("tag", "kont")

    def __init__(self, tag: Location, kont: "Kont"):
        self.tag = tag
        self.kont = kont

    def locations(self) -> Tuple[Location, ...]:
        # The continuation's own locations are traversed by the GC via
        # Kont.locations(); here we expose only the tag plus a marker
        # handled specially in the collector.
        return (self.tag,)

    def __repr__(self) -> str:
        return f"ESCAPE:(tag={self.tag})"


class Primop(Value):
    """PRIMOP:phi — a standard-library procedure.

    ``proc`` receives ``(machine, store, args)`` and returns a Value;
    control primops (call/cc, apply, escapes into the evaluator)
    instead set ``controls=True`` and receive ``(machine, state, args)``
    returning a new machine state.

    ``proc1`` / ``proc2`` are optional arity-specialized entry points —
    ``(machine, store, a)`` / ``(machine, store, a, b)`` — that must
    behave exactly like ``proc`` on an args tuple of that length
    (result, errors, and error texts included).  Registering ``procN``
    also asserts that the primop *accepts* arity N, so callers with a
    statically known argument count may skip the arity check along
    with the args tuple; every other caller goes through ``proc``
    behind the usual check.
    """

    __slots__ = ("name", "proc", "arity", "controls", "proc1", "proc2")

    def __init__(
        self,
        name: str,
        proc: Callable,
        arity: Optional[Tuple[int, Optional[int]]] = None,
        controls: bool = False,
    ):
        self.name = name
        self.proc = proc
        self.arity = arity
        self.controls = controls
        self.proc1 = None
        self.proc2 = None

    def __repr__(self) -> str:
        return f"PRIMOP:{self.name}"


def is_true(value: Value) -> bool:
    """Scheme truth: everything except FALSE is true."""
    return value is not FALSE


def make_boolean(flag: bool) -> Boolean:
    return TRUE if flag else FALSE
