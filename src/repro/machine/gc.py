"""The garbage collection rule (Figure 5), canonical and incremental.

    (v, rho, kappa, sigma[b -> v', ...]) -> (v, rho, kappa, sigma)
        if {b, ...} is nonempty and b, ... do not occur within
        v, rho, kappa, sigma

Reachability is computed iteratively (no Python recursion) because CPS
programs build continuation chains and list structures far deeper than
the interpreter stack.

Two collectors implement the rule:

- :func:`collect` / :func:`collect_final` — the canonical full-heap
  tracing collection, O(live heap) per application.  This is the
  specification and the verification oracle.
- :class:`RefTracker` — the *delta* collector used by the incremental
  meter.  It maintains per-location incoming-reference counts (store
  edges via the :class:`~repro.machine.store.Store` mutation hooks,
  root edges via the meter's per-step configuration diffs).  Because
  Definition 21 applies the GC rule after every step, the only garbage
  creatable by one step is reachable from references that step dropped
  — exactly the locations whose count hit zero — so each application
  is a decrement cascade over the dropped-reference candidate set,
  O(garbage) instead of O(live heap).

  Reference counting alone cannot reclaim cycles.  Absent mutation the
  store's reference graph is acyclic (a fresh location is greater than
  every location its value mentions), so cycles require a ``write``
  that installs a *forward* edge (a reference to a location >= the
  written cell), and every cycle passes through such a written cell —
  an *anchor*.  The tracker maintains the anchor set (letrec-style
  ``define`` initializations are the ubiquitous source: the recursive
  closure's environment mentions its own cell) and counts root and
  heap references separately.  A decrement that leaves a location with
  heap references but no roots is a cycle *suspect*; at the next
  application of the GC rule the tracker resolves suspects cheaply:

  * if every live anchor still has a root reference, every cycle is
    rooted, hence live — the suspects are cleared in O(|anchors|);
  * otherwise each unrooted anchor's reachable subgraph gets a bounded
    trial deletion (the dying letrec cluster is typically a handful of
    cells), reclaiming garbage cycles exactly when they arise;
  * only if the subgraph exceeds the budget, or the local analysis
    cannot decide, does that one application fall back to the
    canonical trace — after which delta collection resumes with the
    counts still consistent.

  Escape procedures (captured continuations) root entire continuation
  chains; rather than reference-count frames the tracker raises
  :attr:`RefTracker.saw_escape` and the meter falls back to the
  canonical collector for the rest of the run.

Constructed with ``generational=True`` (the ``engine="generational"``
meter), the tracker additionally partitions locations by a *tenure
floor*: locations below the floor are tenured, locations at or above
it are the nursery.  Allocation order makes the partition a single
cursor comparison — locations are monotone, so "recently allocated" is
literally "numerically large".  Three mechanisms keep collections from
rescanning cold (tenured) state:

* the unrooted-anchor set is maintained *incrementally* (root-count
  transitions, the write barrier, and deletions update it), replacing
  the per-collection O(|anchors|) rescan;
* a trial deletion that proves an unrooted anchor's subgraph fully
  live, with the subgraph entirely tenured, caches that verdict
  against the *tenured epoch* — a counter bumped only by mutations of
  tenured cells — so the dormant letrec clusters that dominate cold
  regions are re-examined only when tenured state actually changed;
* when every unrooted anchor is decided live (cached verdict or a
  zero-reclaim trial), the suspects are cleared *without* the
  conservative canonical trace: if all trials fit the budget and free
  nothing, a source SCC of any remaining garbage would have had no
  external references and been freed, so no garbage remains.

Promotion is driven by survival count: every ``nursery_span``
allocations the live nursery is scanned once, each survivor's count
incremented, and the floor advanced past the leading run of cells
that survived ``promote_after`` scans.  A write barrier records
tenured cells whose value references the nursery (the remembered set
— old-to-young edges, reported by ``repro analyze --meter-audit``
together with per-region scan counters in :attr:`RefTracker.stats`).
The reclaimed locations per GC-rule application are *identical* to the
plain delta tracker's — the equivalence suite holds generational ==
delta == reference on answer/sup/peak/collected.

Both collectors accept ``pin_from``: locations at or above the pin are
never reclaimed (treated as externally referenced).  The sampled meter
uses this to reconstruct the exact pre-GC store of a step
retroactively — collect against the *previous* configuration's roots
while pinning everything the step just allocated.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .config import Final, State
from .continuation import Kont, chain
from .environment import Environment
from .store import Store
from .values import Escape, Location, Value


def reachable_locations(
    store: Store,
    root_values: Iterable[Value] = (),
    root_env: Optional[Environment] = None,
    root_kont: Optional[Kont] = None,
) -> Set[Location]:
    """The set of locations reachable from the given roots via the
    active store."""
    live: Set[Location] = set()
    pending_locations: list = []
    pending_values: list = list(root_values)
    seen_konts: Set[int] = set()
    pending_konts: list = []

    if root_env is not None:
        pending_locations.extend(root_env.location_values())
    if root_kont is not None:
        pending_konts.append(root_kont)

    while pending_values or pending_locations or pending_konts:
        while pending_values:
            value = pending_values.pop()
            pending_locations.extend(value.locations())
            if isinstance(value, Escape):
                pending_konts.append(value.kont)
        while pending_locations:
            location = pending_locations.pop()
            if location in live:
                continue
            live.add(location)
            if location in store:
                pending_values.append(store.read(location))
        while pending_konts:
            kont = pending_konts.pop()
            if id(kont) in seen_konts:
                continue
            for frame in chain(kont):
                if id(frame) in seen_konts:
                    break
                seen_konts.add(id(frame))
                pending_locations.extend(frame.direct_locations())
                pending_values.extend(frame.direct_values())

    return live


def state_roots(state: State):
    """Root values/env/kont of an intermediate configuration.

    When the control component is an expression it mentions no
    locations (Programs and Inputs contain none, and quoted constants
    are atomic), so only the environment and continuation are roots.
    """
    values = (state.control,) if state.is_value else ()
    return values, state.env, state.kont


def collect(state: State, bus=None, pin_from: Optional[int] = None) -> int:
    """Apply the GC rule exhaustively: remove every unreachable
    location.  Returns the number of locations collected.  *bus* is an
    optional trace bus; nonzero reclamations are published to it as
    ``gc``/``canonical`` events.  Locations >= *pin_from* are kept
    regardless of reachability (the sampled meter's retro-exact
    reconstruction pins the current step's allocations while
    collecting against the previous configuration's roots)."""
    values, env, kont = state_roots(state)
    live = reachable_locations(state.store, values, env, kont)
    if pin_from is None:
        garbage = [loc for loc in state.store.locations() if loc not in live]
    else:
        garbage = [
            loc
            for loc in state.store.locations()
            if loc < pin_from and loc not in live
        ]
    if garbage:
        state.store.delete_many(garbage)
        if bus is not None:
            bus.emit_gc("canonical", len(garbage))
    return len(garbage)


def collect_final(final: Final, bus=None, pin_from: Optional[int] = None) -> int:
    """GC a final configuration (v, sigma): roots are v alone."""
    live = reachable_locations(final.store, (final.value,))
    if pin_from is None:
        garbage = [loc for loc in final.store.locations() if loc not in live]
    else:
        garbage = [
            loc
            for loc in final.store.locations()
            if loc < pin_from and loc not in live
        ]
    if garbage:
        final.store.delete_many(garbage)
        if bus is not None:
            bus.emit_gc("canonical", len(garbage))
    return len(garbage)


# ---------------------------------------------------------------------------
# The delta collector
# ---------------------------------------------------------------------------


class RefTracker:
    """Per-location incoming-reference counts for the delta collector.

    A location's count is the number of references to it from (a) the
    values held in store cells — the *heap* references, maintained by
    the store mutation hooks — and (b) the configuration roots — the
    register environment's range (with multiplicity), each continuation
    frame's direct locations and parked values, and the accumulator —
    maintained by the meter's per-step diffs.  The total is zero
    exactly when the location is unreferenced, which for an acyclic
    store implies every garbage location is reached by the
    zero-candidate cascade.  Root counts are additionally kept in a
    separate map because cycle detection needs them: a location whose
    roots are gone but whose heap count survives is the only candidate
    for membership in (or retention by) a garbage cycle.
    """

    #: Node limit for one trial deletion; a subgraph larger than this
    #: falls back to the canonical trace for that application.
    TRIAL_BUDGET = 256

    #: Allocations between nursery survival scans (generational mode).
    NURSERY_SPAN = 512

    #: Survival scans a nursery cell must live through before the
    #: tenure floor may advance past it.
    PROMOTE_AFTER = 2

    __slots__ = (
        "rc",
        "root_rc",
        "zeros",
        "suspects",
        "anchors",
        "unrooted_anchors",
        "saw_escape",
        "bus",
        "generational",
        "tenure_floor",
        "tenured_epoch",
        "survival",
        "remembered",
        "_verdicts",
        "_next_scan",
        "stats",
    )

    def __init__(self, generational: bool = False):
        #: Total (heap + root) reference count per location.
        self.rc: Dict[Location, int] = {}
        #: Root-only reference count per location.
        self.root_rc: Dict[Location, int] = {}
        #: Locations whose count is (or transiently was) zero since the
        #: last collection — the candidate set for the next sweep.
        self.zeros: Set[Location] = set()
        #: Locations decremented to a nonzero count with no remaining
        #: root references while a cycle is possible: a garbage cycle's
        #: orphaning always flags a member or retained straggler here.
        self.suspects: Set[Location] = set()
        #: Cells whose *current* value holds a forward (or self) edge —
        #: every store cycle passes through one (alloc-time edges point
        #: strictly backward), so anchors index all possible cycles.
        self.anchors: Set[Location] = set()
        #: Anchors currently without root references, maintained
        #: incrementally (root-count transitions, write barrier,
        #: deletions) so reclaim never rescans the full anchor set.
        self.unrooted_anchors: Set[Location] = set()
        self.saw_escape = False
        #: Optional trace bus; each nonzero reclamation is published as
        #: a ``gc`` event labelled ``delta`` (sweeps) or ``trial``
        #: (cycle trial deletions), partitioning the collected total.
        self.bus = None
        #: Generational mode (see the module docstring).
        self.generational = generational
        #: Locations below the floor are tenured; at/above, nursery.
        #: Zero in plain delta mode, making every region comparison on
        #: the hot decrement paths a single always-false integer test.
        self.tenure_floor: int = 0
        #: Bumped by any mutation of a tenured location; cached
        #: all-tenured trial verdicts are valid while it is unchanged.
        self.tenured_epoch: int = 0
        #: Survival-scan counts for live nursery locations.
        self.survival: Dict[Location, int] = {}
        #: Remembered set: tenured cells whose value references the
        #: nursery (old-to-young edges recorded by the write barrier).
        self.remembered: Set[Location] = set()
        #: anchor -> tenured_epoch of a trial that proved its (fully
        #: tenured) subgraph live while freeing nothing.
        self._verdicts: Dict[Location, int] = {}
        #: Allocation cursor at which the next survival scan runs.
        self._next_scan: int = self.NURSERY_SPAN
        #: Region observability counters for ``--meter-audit``.
        self.stats: Dict[str, int] = {
            "collections": 0,
            "trials": 0,
            "trial_nodes": 0,
            "trial_skips": 0,
            "nursery_scans": 0,
            "nursery_scanned": 0,
            "promotions": 0,
        }

    # -- reference-count primitives ----------------------------------------

    def inc_heap(self, location: Location) -> None:
        self.rc[location] = self.rc.get(location, 0) + 1

    def dec_heap(self, location: Location) -> None:
        count = self.rc[location] - 1
        self.rc[location] = count
        if location < self.tenure_floor:
            # Any decrement of a tenured location can turn a proven-
            # live subgraph into garbage: invalidate cached verdicts.
            self.tenured_epoch += 1
        if count == 0:
            self.zeros.add(location)
        elif self.anchors and self.root_rc.get(location, 0) == 0:
            self.suspects.add(location)

    def inc_root(self, location: Location) -> None:
        self.rc[location] = self.rc.get(location, 0) + 1
        self.root_rc[location] = self.root_rc.get(location, 0) + 1
        if self.unrooted_anchors:
            self.unrooted_anchors.discard(location)

    def dec_root(self, location: Location) -> None:
        count = self.rc[location] - 1
        self.rc[location] = count
        if location < self.tenure_floor:
            self.tenured_epoch += 1
        roots = self.root_rc[location] - 1
        if roots:
            self.root_rc[location] = roots
        else:
            del self.root_rc[location]
            if count == 0:
                self.zeros.add(location)
            elif self.anchors:
                self.suspects.add(location)
                if location in self.anchors:
                    self.unrooted_anchors.add(location)
            return
        if count == 0:
            self.zeros.add(location)

    def inc_value_root(self, value: Value) -> None:
        """Count the references held directly by a root-held *value*."""
        if isinstance(value, Escape):
            self.saw_escape = True
        for location in value.locations():
            self.inc_root(location)

    def dec_value_root(self, value: Value) -> None:
        for location in value.locations():
            self.dec_root(location)

    def _dec_value_heap(self, value: Value) -> None:
        for location in value.locations():
            self.dec_heap(location)

    # -- store mutation hooks ----------------------------------------------

    def on_alloc(self, location: Location, value: Value) -> None:
        self.rc[location] = 0
        self.zeros.add(location)
        if isinstance(value, Escape):
            self.saw_escape = True
        for reference in value.locations():
            self.inc_heap(reference)
        # A freshly built value can only mention older locations, so an
        # alloc never creates a forward edge (no anchor bookkeeping).

    def on_write(self, location: Location, old: Value, new: Value) -> None:
        self._dec_value_heap(old)
        if isinstance(new, Escape):
            self.saw_escape = True
        floor = self.tenure_floor
        tenured = location < floor
        if tenured:
            self.tenured_epoch += 1
        forward = False
        young = False
        for reference in new.locations():
            self.inc_heap(reference)
            if reference >= location:
                forward = True
            if reference >= floor:
                young = True
        if forward:
            # A forward (or self) edge: any cycle through this cell is
            # now possible.  The canonical case is letrec/define
            # initialization writing a recursive closure over its own
            # binding cell.
            self.anchors.add(location)
            if self.root_rc.get(location, 0) == 0:
                self.unrooted_anchors.add(location)
        else:
            self.anchors.discard(location)
            if self.unrooted_anchors:
                self.unrooted_anchors.discard(location)
        if tenured:
            # Write barrier: a tenured cell now referencing the nursery
            # carries an old-to-young edge (every such edge is forward,
            # so remembered is always a subset of the anchors).
            if young:
                self.remembered.add(location)
            elif self.remembered:
                self.remembered.discard(location)

    def on_delete(self, location: Location, value: Value) -> None:
        self._dec_value_heap(value)
        if location < self.tenure_floor:
            self.tenured_epoch += 1
            if self.remembered:
                self.remembered.discard(location)
        if self.anchors:
            self.anchors.discard(location)
            if self.unrooted_anchors:
                self.unrooted_anchors.discard(location)
        if self.survival:
            self.survival.pop(location, None)
        if self._verdicts:
            self._verdicts.pop(location, None)

    # -- priming and sweeping ----------------------------------------------

    def prime(self, store: Store) -> None:
        """Count the store-internal references from scratch (the root
        references are added by the meter as it registers the initial
        configuration's components)."""
        self.rc = {location: 0 for location in store.locations()}
        self.root_rc = {}
        self.zeros = set(self.rc)
        for location, value in store.items():
            if isinstance(value, Escape):
                self.saw_escape = True
            for reference in value.locations():
                self.inc_heap(reference)
                if reference >= location:
                    self.anchors.add(location)
        # No roots are registered yet, so every anchor is unrooted.
        self.unrooted_anchors = set(self.anchors)
        if self.generational:
            self._next_scan = store._next_location + self.NURSERY_SPAN

    def sweep(self, store: Store, pin_from: Optional[int] = None) -> int:
        """Apply the GC rule via the decrement cascade: delete every
        candidate whose count is zero, transitively.  Returns the
        number of locations collected.  Candidates at or above
        *pin_from* are held out of the cascade (and restored to the
        candidate set afterwards, so a later unpinned sweep sees
        them)."""
        collected = 0
        zeros = self.zeros
        rc = self.rc
        held: List[Location] = []
        while zeros:
            batch: List[Location] = []
            for location in zeros:
                if rc.get(location, 0) == 0:
                    if location in store:
                        if pin_from is not None and location >= pin_from:
                            held.append(location)
                        else:
                            batch.append(location)
                    else:
                        rc.pop(location, None)
                        self.root_rc.pop(location, None)
            zeros.clear()
            if not batch:
                break
            # delete_many fires on_delete per location, decrementing the
            # deleted values' references and refilling ``zeros``.
            store.delete_many(batch)
            collected += len(batch)
        if held:
            zeros.update(held)
        return collected

    def _trial_reclaim(
        self,
        store: Store,
        anchor: Location,
        pin_from: Optional[int] = None,
    ) -> Optional[int]:
        """Bounded trial deletion of the subgraph reachable from an
        unrooted *anchor*.  Any garbage cycle through the anchor lies
        inside that subgraph; a member is externally referenced exactly
        when its total count exceeds its subgraph-internal in-degree.
        Members neither externally referenced nor reachable from one
        are garbage and are deleted.  Returns the number reclaimed, or
        None when the subgraph exceeds the budget.  Locations at or
        above *pin_from* count as externally referenced.  A trial that
        frees nothing over an entirely tenured subgraph caches an
        epoch-stamped liveness verdict for the anchor."""
        budget = self.TRIAL_BUDGET
        floor = self.tenure_floor
        all_tenured = True
        subgraph: Dict[Location, Tuple[Location, ...]] = {}
        stack: List[Location] = [anchor]
        while stack:
            location = stack.pop()
            if location in subgraph or location not in store:
                continue
            if len(subgraph) >= budget:
                return None
            if location >= floor:
                all_tenured = False
            references = store.read(location).locations()
            subgraph[location] = references
            stack.extend(references)
        self.stats["trials"] += 1
        self.stats["trial_nodes"] += len(subgraph)
        internal: Dict[Location, int] = dict.fromkeys(subgraph, 0)
        for references in subgraph.values():
            for reference in references:
                if reference in internal:
                    internal[reference] += 1
        rc = self.rc
        if pin_from is None:
            live = [
                loc for loc in subgraph if rc.get(loc, 0) > internal[loc]
            ]
        else:
            live = [
                loc
                for loc in subgraph
                if loc >= pin_from or rc.get(loc, 0) > internal[loc]
            ]
        alive: Set[Location] = set(live)
        while live:
            for reference in subgraph[live.pop()]:
                if reference in internal and reference not in alive:
                    alive.add(reference)
                    live.append(reference)
        garbage = [loc for loc in subgraph if loc not in alive]
        if garbage:
            # Every reference into the garbage comes from the garbage
            # itself, so the deletion hooks drive those counts to zero
            # and the next sweep purges the entries.
            store.delete_many(garbage)
        elif self.generational and all_tenured and pin_from is None:
            # Fully live, fully tenured: re-examining this anchor is
            # pointless until some tenured location is mutated.
            self._verdicts[anchor] = self.tenured_epoch
        return len(garbage)

    def reclaim(
        self, store: Store, pin_from: Optional[int] = None
    ) -> Tuple[int, bool]:
        """One application of the GC rule: sweep the zero candidates,
        then resolve cycle suspects.  Returns (locations collected,
        canonical trace still required).

        Trace events mirror the *counted* reclamations exactly — a
        trial batch abandoned to the canonical path is not published,
        because its locations are not added to the returned count —
        so the values of a stream's ``gc`` events sum to the meter's
        ``collected`` total."""
        bus = self.bus
        self.stats["collections"] += 1
        generational = self.generational
        collected = self.sweep(store, pin_from)
        if bus is not None and collected:
            bus.emit_gc("delta", collected)
        while self.suspects:
            unrooted = [
                anchor
                for anchor in self.unrooted_anchors
                if anchor in store
            ]
            if not unrooted:
                # Every cycle passes through an anchor and every live
                # anchor is rooted, so every cycle is live: the
                # suspects are refcount-exact leftovers.
                self.suspects.clear()
                break
            if generational:
                epoch = self.tenured_epoch
                verdicts = self._verdicts
                pending = []
                for anchor in unrooted:
                    if verdicts.get(anchor) == epoch:
                        self.stats["trial_skips"] += 1
                    else:
                        pending.append(anchor)
                unrooted = pending
            progress = 0
            for anchor in unrooted:
                freed = self._trial_reclaim(store, anchor, pin_from)
                if freed is None:
                    return collected, True
                progress += freed
            if not progress:
                if generational:
                    # Every unrooted anchor's trial fit the budget and
                    # freed nothing (this round or, cached, since the
                    # last tenured mutation).  Any remaining garbage
                    # would have a source SCC with no external
                    # references inside some unrooted anchor's
                    # subgraph, and that trial would have freed it —
                    # so no garbage remains and the conservative
                    # canonical trace can be skipped.  It would have
                    # reclaimed nothing, so the collected totals stay
                    # identical to the plain delta engine's.
                    self.suspects.clear()
                    break
                # Unrooted anchors kept alive through heap references
                # the local analysis cannot rule on: trace once.
                return collected, True
            swept = self.sweep(store, pin_from)
            if bus is not None:
                bus.emit_gc("trial", progress)
                if swept:
                    bus.emit_gc("delta", swept)
            collected += progress + swept
        if generational and store._next_location >= self._next_scan:
            self._promote(store)
        return collected, False

    def _promote(self, store: Store) -> None:
        """Survival scan of the live nursery.  Each surviving location's
        count is incremented; the tenure floor advances past the
        leading run of locations that survived ``PROMOTE_AFTER`` scans
        (the floor is a cursor, so only a prefix of the nursery can be
        promoted).  The remembered set is rebuilt from the anchors —
        every old-to-young edge is a forward edge, so tenured cells
        referencing the nursery are always anchors — which also prunes
        entries the floor movement made stale."""
        floor = self.tenure_floor
        survival = self.survival
        cells = store._cells
        nursery: List[Location] = []
        for location in reversed(cells):
            if location < floor:
                break
            nursery.append(location)
        nursery.reverse()
        self.stats["nursery_scans"] += 1
        self.stats["nursery_scanned"] += len(nursery)
        promote_after = self.PROMOTE_AFTER
        new_floor = floor
        promoted = 0
        leading = True
        for location in nursery:
            count = survival.get(location, 0) + 1
            if leading and count >= promote_after:
                new_floor = location + 1
                survival.pop(location, None)
                promoted += 1
            else:
                leading = False
                survival[location] = count
        if promoted:
            self.tenure_floor = new_floor
            self.stats["promotions"] += promoted
            remembered: Set[Location] = set()
            for location in self.anchors:
                if location < new_floor and location in cells and any(
                    reference >= new_floor
                    for reference in cells[location].locations()
                ):
                    remembered.add(location)
            self.remembered = remembered
        self._next_scan = store._next_location + self.NURSERY_SPAN

    def note_canonical(self, store: Store) -> None:
        """Reconcile after a canonical collection ran: every remaining
        candidate is either live (count > 0) or already deleted."""
        for location in self.zeros:
            if self.rc.get(location, 0) == 0 and location not in store:
                self.rc.pop(location, None)
                self.root_rc.pop(location, None)
        self.zeros.clear()
        self.suspects.clear()
        if self.anchors and not self.generational:
            # Generational mode skips this O(live heap) rescan: the
            # deletion hooks already prune anchors (and the unrooted
            # subset) cell by cell.
            self.anchors.intersection_update(store.locations())
            self.unrooted_anchors.intersection_update(self.anchors)

    # -- integrity audit ----------------------------------------------------

    def expected_counts(
        self,
        store: Store,
        root_values: Iterable[Value] = (),
        root_env: Optional[Environment] = None,
        root_kont: Optional[Kont] = None,
    ) -> Tuple[Dict[Location, int], Dict[Location, int]]:
        """Recompute (total, root-only) counts from scratch
        (checkpoint_spaces-style audit).  Only valid while no escape
        has been seen."""
        counts: Dict[Location, int] = {location: 0 for location in store.locations()}
        roots: Dict[Location, int] = {}

        def add_root(location: Location) -> None:
            counts[location] = counts.get(location, 0) + 1
            roots[location] = roots.get(location, 0) + 1

        for _location, value in store.items():
            for reference in value.locations():
                counts[reference] = counts.get(reference, 0) + 1
        for value in root_values:
            for reference in value.locations():
                add_root(reference)
        if root_env is not None:
            for location in root_env.location_tuple():
                add_root(location)
        if root_kont is not None:
            for frame in chain(root_kont):
                for location in frame.direct_locations():
                    add_root(location)
                for value in frame.direct_values():
                    for reference in value.locations():
                        add_root(reference)
        return counts, roots

    def audit(
        self,
        store: Store,
        root_values: Iterable[Value] = (),
        root_env: Optional[Environment] = None,
        root_kont: Optional[Kont] = None,
    ) -> None:
        """Raise AssertionError when the maintained counts, root
        counts, or anchors disagree with a from-scratch recount, or
        when the store still holds a location unreachable from the
        given roots (i.e. the last reclaim failed to apply the GC rule
        exhaustively)."""
        expected, expected_roots = self.expected_counts(
            store, root_values, root_env, root_kont
        )
        actual = {loc: n for loc, n in self.rc.items() if n or loc in store}
        expected = {loc: n for loc, n in expected.items() if n or loc in store}
        if actual != expected:
            diff = {
                loc: (expected.get(loc), actual.get(loc))
                for loc in set(expected) | set(actual)
                if expected.get(loc) != actual.get(loc)
            }
            raise AssertionError(f"refcount drift (expected, actual): {diff}")
        actual_roots = {loc: n for loc, n in self.root_rc.items() if n}
        if actual_roots != expected_roots:
            diff = {
                loc: (expected_roots.get(loc), actual_roots.get(loc))
                for loc in set(expected_roots) | set(actual_roots)
                if expected_roots.get(loc) != actual_roots.get(loc)
            }
            raise AssertionError(f"root-count drift (expected, actual): {diff}")
        expected_anchors = {
            location
            for location, value in store.items()
            if any(ref >= location for ref in value.locations())
        }
        live_anchors = {loc for loc in self.anchors if loc in store}
        if live_anchors != expected_anchors:
            raise AssertionError(
                f"anchor drift: expected={expected_anchors} "
                f"actual={live_anchors}"
            )
        expected_unrooted = {
            loc
            for loc in expected_anchors
            if expected_roots.get(loc, 0) == 0
        }
        live_unrooted = {
            loc for loc in self.unrooted_anchors if loc in store
        }
        if live_unrooted != expected_unrooted:
            raise AssertionError(
                f"unrooted-anchor drift: expected={expected_unrooted} "
                f"actual={live_unrooted}"
            )
        floor = self.tenure_floor
        expected_remembered = {
            location
            for location, value in store.items()
            if location < floor
            and any(ref >= floor for ref in value.locations())
        }
        live_remembered = {loc for loc in self.remembered if loc in store}
        if live_remembered != expected_remembered:
            raise AssertionError(
                f"remembered-set drift: expected={expected_remembered} "
                f"actual={live_remembered}"
            )
        live = reachable_locations(store, root_values, root_env, root_kont)
        garbage = [loc for loc in store.locations() if loc not in live]
        if garbage:
            raise AssertionError(f"unreclaimed garbage after sweep: {garbage}")
