"""The garbage collection rule (Figure 5).

    (v, rho, kappa, sigma[b -> v', ...]) -> (v, rho, kappa, sigma)
        if {b, ...} is nonempty and b, ... do not occur within
        v, rho, kappa, sigma

Reachability is computed iteratively (no Python recursion) because CPS
programs build continuation chains and list structures far deeper than
the interpreter stack.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from .config import Final, State
from .continuation import Kont, chain
from .environment import Environment
from .store import Store
from .values import Escape, Location, Value


def reachable_locations(
    store: Store,
    root_values: Iterable[Value] = (),
    root_env: Optional[Environment] = None,
    root_kont: Optional[Kont] = None,
) -> Set[Location]:
    """The set of locations reachable from the given roots via the
    active store."""
    live: Set[Location] = set()
    pending_locations: list = []
    pending_values: list = list(root_values)
    seen_konts: Set[int] = set()
    pending_konts: list = []

    if root_env is not None:
        pending_locations.extend(root_env.location_values())
    if root_kont is not None:
        pending_konts.append(root_kont)

    while pending_values or pending_locations or pending_konts:
        while pending_values:
            value = pending_values.pop()
            pending_locations.extend(value.locations())
            if isinstance(value, Escape):
                pending_konts.append(value.kont)
        while pending_locations:
            location = pending_locations.pop()
            if location in live:
                continue
            live.add(location)
            if location in store:
                pending_values.append(store.read(location))
        while pending_konts:
            kont = pending_konts.pop()
            if id(kont) in seen_konts:
                continue
            for frame in chain(kont):
                if id(frame) in seen_konts:
                    break
                seen_konts.add(id(frame))
                pending_locations.extend(frame.direct_locations())
                pending_values.extend(frame.direct_values())

    return live


def state_roots(state: State):
    """Root values/env/kont of an intermediate configuration.

    When the control component is an expression it mentions no
    locations (Programs and Inputs contain none, and quoted constants
    are atomic), so only the environment and continuation are roots.
    """
    values = (state.control,) if state.is_value else ()
    return values, state.env, state.kont


def collect(state: State) -> int:
    """Apply the GC rule exhaustively: remove every unreachable
    location.  Returns the number of locations collected."""
    values, env, kont = state_roots(state)
    live = reachable_locations(state.store, values, env, kont)
    garbage = [loc for loc in state.store.locations() if loc not in live]
    if garbage:
        state.store.delete_many(garbage)
    return len(garbage)


def collect_final(final: Final) -> int:
    """GC a final configuration (v, sigma): roots are v alone."""
    live = reachable_locations(final.store, (final.value,))
    garbage = [loc for loc in final.store.locations() if loc not in live]
    if garbage:
        final.store.delete_many(garbage)
    return len(garbage)
