"""The garbage collection rule (Figure 5), canonical and incremental.

    (v, rho, kappa, sigma[b -> v', ...]) -> (v, rho, kappa, sigma)
        if {b, ...} is nonempty and b, ... do not occur within
        v, rho, kappa, sigma

Reachability is computed iteratively (no Python recursion) because CPS
programs build continuation chains and list structures far deeper than
the interpreter stack.

Two collectors implement the rule:

- :func:`collect` / :func:`collect_final` — the canonical full-heap
  tracing collection, O(live heap) per application.  This is the
  specification and the verification oracle.
- :class:`RefTracker` — the *delta* collector used by the incremental
  meter.  It maintains per-location incoming-reference counts (store
  edges via the :class:`~repro.machine.store.Store` mutation hooks,
  root edges via the meter's per-step configuration diffs).  Because
  Definition 21 applies the GC rule after every step, the only garbage
  creatable by one step is reachable from references that step dropped
  — exactly the locations whose count hit zero — so each application
  is a decrement cascade over the dropped-reference candidate set,
  O(garbage) instead of O(live heap).

  Reference counting alone cannot reclaim cycles.  Absent mutation the
  store's reference graph is acyclic (a fresh location is greater than
  every location its value mentions), so cycles require a ``write``
  that installs a *forward* edge (a reference to a location >= the
  written cell), and every cycle passes through such a written cell —
  an *anchor*.  The tracker maintains the anchor set (letrec-style
  ``define`` initializations are the ubiquitous source: the recursive
  closure's environment mentions its own cell) and counts root and
  heap references separately.  A decrement that leaves a location with
  heap references but no roots is a cycle *suspect*; at the next
  application of the GC rule the tracker resolves suspects cheaply:

  * if every live anchor still has a root reference, every cycle is
    rooted, hence live — the suspects are cleared in O(|anchors|);
  * otherwise each unrooted anchor's reachable subgraph gets a bounded
    trial deletion (the dying letrec cluster is typically a handful of
    cells), reclaiming garbage cycles exactly when they arise;
  * only if the subgraph exceeds the budget, or the local analysis
    cannot decide, does that one application fall back to the
    canonical trace — after which delta collection resumes with the
    counts still consistent.

  Escape procedures (captured continuations) root entire continuation
  chains; rather than reference-count frames the tracker raises
  :attr:`RefTracker.saw_escape` and the meter falls back to the
  canonical collector for the rest of the run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .config import Final, State
from .continuation import Kont, chain
from .environment import Environment
from .store import Store
from .values import Escape, Location, Value


def reachable_locations(
    store: Store,
    root_values: Iterable[Value] = (),
    root_env: Optional[Environment] = None,
    root_kont: Optional[Kont] = None,
) -> Set[Location]:
    """The set of locations reachable from the given roots via the
    active store."""
    live: Set[Location] = set()
    pending_locations: list = []
    pending_values: list = list(root_values)
    seen_konts: Set[int] = set()
    pending_konts: list = []

    if root_env is not None:
        pending_locations.extend(root_env.location_values())
    if root_kont is not None:
        pending_konts.append(root_kont)

    while pending_values or pending_locations or pending_konts:
        while pending_values:
            value = pending_values.pop()
            pending_locations.extend(value.locations())
            if isinstance(value, Escape):
                pending_konts.append(value.kont)
        while pending_locations:
            location = pending_locations.pop()
            if location in live:
                continue
            live.add(location)
            if location in store:
                pending_values.append(store.read(location))
        while pending_konts:
            kont = pending_konts.pop()
            if id(kont) in seen_konts:
                continue
            for frame in chain(kont):
                if id(frame) in seen_konts:
                    break
                seen_konts.add(id(frame))
                pending_locations.extend(frame.direct_locations())
                pending_values.extend(frame.direct_values())

    return live


def state_roots(state: State):
    """Root values/env/kont of an intermediate configuration.

    When the control component is an expression it mentions no
    locations (Programs and Inputs contain none, and quoted constants
    are atomic), so only the environment and continuation are roots.
    """
    values = (state.control,) if state.is_value else ()
    return values, state.env, state.kont


def collect(state: State, bus=None) -> int:
    """Apply the GC rule exhaustively: remove every unreachable
    location.  Returns the number of locations collected.  *bus* is an
    optional trace bus; nonzero reclamations are published to it as
    ``gc``/``canonical`` events."""
    values, env, kont = state_roots(state)
    live = reachable_locations(state.store, values, env, kont)
    garbage = [loc for loc in state.store.locations() if loc not in live]
    if garbage:
        state.store.delete_many(garbage)
        if bus is not None:
            bus.emit_gc("canonical", len(garbage))
    return len(garbage)


def collect_final(final: Final, bus=None) -> int:
    """GC a final configuration (v, sigma): roots are v alone."""
    live = reachable_locations(final.store, (final.value,))
    garbage = [loc for loc in final.store.locations() if loc not in live]
    if garbage:
        final.store.delete_many(garbage)
        if bus is not None:
            bus.emit_gc("canonical", len(garbage))
    return len(garbage)


# ---------------------------------------------------------------------------
# The delta collector
# ---------------------------------------------------------------------------


class RefTracker:
    """Per-location incoming-reference counts for the delta collector.

    A location's count is the number of references to it from (a) the
    values held in store cells — the *heap* references, maintained by
    the store mutation hooks — and (b) the configuration roots — the
    register environment's range (with multiplicity), each continuation
    frame's direct locations and parked values, and the accumulator —
    maintained by the meter's per-step diffs.  The total is zero
    exactly when the location is unreferenced, which for an acyclic
    store implies every garbage location is reached by the
    zero-candidate cascade.  Root counts are additionally kept in a
    separate map because cycle detection needs them: a location whose
    roots are gone but whose heap count survives is the only candidate
    for membership in (or retention by) a garbage cycle.
    """

    #: Node limit for one trial deletion; a subgraph larger than this
    #: falls back to the canonical trace for that application.
    TRIAL_BUDGET = 256

    __slots__ = (
        "rc",
        "root_rc",
        "zeros",
        "suspects",
        "anchors",
        "saw_escape",
        "bus",
    )

    def __init__(self):
        #: Total (heap + root) reference count per location.
        self.rc: Dict[Location, int] = {}
        #: Root-only reference count per location.
        self.root_rc: Dict[Location, int] = {}
        #: Locations whose count is (or transiently was) zero since the
        #: last collection — the candidate set for the next sweep.
        self.zeros: Set[Location] = set()
        #: Locations decremented to a nonzero count with no remaining
        #: root references while a cycle is possible: a garbage cycle's
        #: orphaning always flags a member or retained straggler here.
        self.suspects: Set[Location] = set()
        #: Cells whose *current* value holds a forward (or self) edge —
        #: every store cycle passes through one (alloc-time edges point
        #: strictly backward), so anchors index all possible cycles.
        self.anchors: Set[Location] = set()
        self.saw_escape = False
        #: Optional trace bus; each nonzero reclamation is published as
        #: a ``gc`` event labelled ``delta`` (sweeps) or ``trial``
        #: (cycle trial deletions), partitioning the collected total.
        self.bus = None

    # -- reference-count primitives ----------------------------------------

    def inc_heap(self, location: Location) -> None:
        self.rc[location] = self.rc.get(location, 0) + 1

    def dec_heap(self, location: Location) -> None:
        count = self.rc[location] - 1
        self.rc[location] = count
        if count == 0:
            self.zeros.add(location)
        elif self.anchors and self.root_rc.get(location, 0) == 0:
            self.suspects.add(location)

    def inc_root(self, location: Location) -> None:
        self.rc[location] = self.rc.get(location, 0) + 1
        self.root_rc[location] = self.root_rc.get(location, 0) + 1

    def dec_root(self, location: Location) -> None:
        count = self.rc[location] - 1
        self.rc[location] = count
        roots = self.root_rc[location] - 1
        if roots:
            self.root_rc[location] = roots
        else:
            del self.root_rc[location]
            if count == 0:
                self.zeros.add(location)
            elif self.anchors:
                self.suspects.add(location)
            return
        if count == 0:
            self.zeros.add(location)

    def inc_value_root(self, value: Value) -> None:
        """Count the references held directly by a root-held *value*."""
        if isinstance(value, Escape):
            self.saw_escape = True
        for location in value.locations():
            self.inc_root(location)

    def dec_value_root(self, value: Value) -> None:
        for location in value.locations():
            self.dec_root(location)

    def _dec_value_heap(self, value: Value) -> None:
        for location in value.locations():
            self.dec_heap(location)

    # -- store mutation hooks ----------------------------------------------

    def on_alloc(self, location: Location, value: Value) -> None:
        self.rc[location] = 0
        self.zeros.add(location)
        if isinstance(value, Escape):
            self.saw_escape = True
        for reference in value.locations():
            self.inc_heap(reference)
        # A freshly built value can only mention older locations, so an
        # alloc never creates a forward edge (no anchor bookkeeping).

    def on_write(self, location: Location, old: Value, new: Value) -> None:
        self._dec_value_heap(old)
        if isinstance(new, Escape):
            self.saw_escape = True
        forward = False
        for reference in new.locations():
            self.inc_heap(reference)
            if reference >= location:
                forward = True
        if forward:
            # A forward (or self) edge: any cycle through this cell is
            # now possible.  The canonical case is letrec/define
            # initialization writing a recursive closure over its own
            # binding cell.
            self.anchors.add(location)
        else:
            self.anchors.discard(location)

    def on_delete(self, location: Location, value: Value) -> None:
        self._dec_value_heap(value)
        if self.anchors:
            self.anchors.discard(location)

    # -- priming and sweeping ----------------------------------------------

    def prime(self, store: Store) -> None:
        """Count the store-internal references from scratch (the root
        references are added by the meter as it registers the initial
        configuration's components)."""
        self.rc = {location: 0 for location in store.locations()}
        self.root_rc = {}
        self.zeros = set(self.rc)
        for location, value in store.items():
            if isinstance(value, Escape):
                self.saw_escape = True
            for reference in value.locations():
                self.inc_heap(reference)
                if reference >= location:
                    self.anchors.add(location)

    def sweep(self, store: Store) -> int:
        """Apply the GC rule via the decrement cascade: delete every
        candidate whose count is zero, transitively.  Returns the
        number of locations collected."""
        collected = 0
        zeros = self.zeros
        rc = self.rc
        while zeros:
            batch: List[Location] = []
            for location in zeros:
                if rc.get(location, 0) == 0:
                    if location in store:
                        batch.append(location)
                    else:
                        rc.pop(location, None)
                        self.root_rc.pop(location, None)
            zeros.clear()
            if not batch:
                break
            # delete_many fires on_delete per location, decrementing the
            # deleted values' references and refilling ``zeros``.
            store.delete_many(batch)
            collected += len(batch)
        return collected

    def _trial_reclaim(self, store: Store, anchor: Location) -> Optional[int]:
        """Bounded trial deletion of the subgraph reachable from an
        unrooted *anchor*.  Any garbage cycle through the anchor lies
        inside that subgraph; a member is externally referenced exactly
        when its total count exceeds its subgraph-internal in-degree.
        Members neither externally referenced nor reachable from one
        are garbage and are deleted.  Returns the number reclaimed, or
        None when the subgraph exceeds the budget."""
        budget = self.TRIAL_BUDGET
        subgraph: Dict[Location, Tuple[Location, ...]] = {}
        stack: List[Location] = [anchor]
        while stack:
            location = stack.pop()
            if location in subgraph or location not in store:
                continue
            if len(subgraph) >= budget:
                return None
            references = store.read(location).locations()
            subgraph[location] = references
            stack.extend(references)
        internal: Dict[Location, int] = dict.fromkeys(subgraph, 0)
        for references in subgraph.values():
            for reference in references:
                if reference in internal:
                    internal[reference] += 1
        rc = self.rc
        live = [loc for loc in subgraph if rc.get(loc, 0) > internal[loc]]
        alive: Set[Location] = set(live)
        while live:
            for reference in subgraph[live.pop()]:
                if reference in internal and reference not in alive:
                    alive.add(reference)
                    live.append(reference)
        garbage = [loc for loc in subgraph if loc not in alive]
        if garbage:
            # Every reference into the garbage comes from the garbage
            # itself, so the deletion hooks drive those counts to zero
            # and the next sweep purges the entries.
            store.delete_many(garbage)
        return len(garbage)

    def reclaim(self, store: Store) -> Tuple[int, bool]:
        """One application of the GC rule: sweep the zero candidates,
        then resolve cycle suspects.  Returns (locations collected,
        canonical trace still required).

        Trace events mirror the *counted* reclamations exactly — a
        trial batch abandoned to the canonical path is not published,
        because its locations are not added to the returned count —
        so the values of a stream's ``gc`` events sum to the meter's
        ``collected`` total."""
        bus = self.bus
        collected = self.sweep(store)
        if bus is not None and collected:
            bus.emit_gc("delta", collected)
        while self.suspects:
            unrooted = [
                anchor
                for anchor in self.anchors
                if anchor in store and anchor not in self.root_rc
            ]
            if not unrooted:
                # Every cycle passes through an anchor and every live
                # anchor is rooted, so every cycle is live: the
                # suspects are refcount-exact leftovers.
                self.suspects.clear()
                return collected, False
            progress = 0
            for anchor in unrooted:
                freed = self._trial_reclaim(store, anchor)
                if freed is None:
                    return collected, True
                progress += freed
            if not progress:
                # Unrooted anchors kept alive through heap references
                # the local analysis cannot rule on: trace once.
                return collected, True
            swept = self.sweep(store)
            if bus is not None:
                bus.emit_gc("trial", progress)
                if swept:
                    bus.emit_gc("delta", swept)
            collected += progress + swept
        return collected, False

    def note_canonical(self, store: Store) -> None:
        """Reconcile after a canonical collection ran: every remaining
        candidate is either live (count > 0) or already deleted."""
        for location in self.zeros:
            if self.rc.get(location, 0) == 0 and location not in store:
                self.rc.pop(location, None)
                self.root_rc.pop(location, None)
        self.zeros.clear()
        self.suspects.clear()
        if self.anchors:
            self.anchors.intersection_update(store.locations())

    # -- integrity audit ----------------------------------------------------

    def expected_counts(
        self,
        store: Store,
        root_values: Iterable[Value] = (),
        root_env: Optional[Environment] = None,
        root_kont: Optional[Kont] = None,
    ) -> Tuple[Dict[Location, int], Dict[Location, int]]:
        """Recompute (total, root-only) counts from scratch
        (checkpoint_spaces-style audit).  Only valid while no escape
        has been seen."""
        counts: Dict[Location, int] = {location: 0 for location in store.locations()}
        roots: Dict[Location, int] = {}

        def add_root(location: Location) -> None:
            counts[location] = counts.get(location, 0) + 1
            roots[location] = roots.get(location, 0) + 1

        for _location, value in store.items():
            for reference in value.locations():
                counts[reference] = counts.get(reference, 0) + 1
        for value in root_values:
            for reference in value.locations():
                add_root(reference)
        if root_env is not None:
            for location in root_env.location_tuple():
                add_root(location)
        if root_kont is not None:
            for frame in chain(root_kont):
                for location in frame.direct_locations():
                    add_root(location)
                for value in frame.direct_values():
                    for reference in value.locations():
                        add_root(reference)
        return counts, roots

    def audit(
        self,
        store: Store,
        root_values: Iterable[Value] = (),
        root_env: Optional[Environment] = None,
        root_kont: Optional[Kont] = None,
    ) -> None:
        """Raise AssertionError when the maintained counts, root
        counts, or anchors disagree with a from-scratch recount, or
        when the store still holds a location unreachable from the
        given roots (i.e. the last reclaim failed to apply the GC rule
        exhaustively)."""
        expected, expected_roots = self.expected_counts(
            store, root_values, root_env, root_kont
        )
        actual = {loc: n for loc, n in self.rc.items() if n or loc in store}
        expected = {loc: n for loc, n in expected.items() if n or loc in store}
        if actual != expected:
            diff = {
                loc: (expected.get(loc), actual.get(loc))
                for loc in set(expected) | set(actual)
                if expected.get(loc) != actual.get(loc)
            }
            raise AssertionError(f"refcount drift (expected, actual): {diff}")
        actual_roots = {loc: n for loc, n in self.root_rc.items() if n}
        if actual_roots != expected_roots:
            diff = {
                loc: (expected_roots.get(loc), actual_roots.get(loc))
                for loc in set(expected_roots) | set(actual_roots)
                if expected_roots.get(loc) != actual_roots.get(loc)
            }
            raise AssertionError(f"root-count drift (expected, actual): {diff}")
        expected_anchors = {
            location
            for location, value in store.items()
            if any(ref >= location for ref in value.locations())
        }
        live_anchors = {loc for loc in self.anchors if loc in store}
        if live_anchors != expected_anchors:
            raise AssertionError(
                f"anchor drift: expected={expected_anchors} "
                f"actual={live_anchors}"
            )
        live = reachable_locations(store, root_values, root_env, root_kont)
        garbage = [loc for loc in store.locations() if loc not in live]
        if garbage:
            raise AssertionError(f"unreclaimed garbage after sweep: {garbage}")
