"""The store: a finite function from locations to values.

Locations are allocated from a countably infinite supply (section 11
requires one); the store tracks running Figure 7 space totals —
``sum(1 + space(sigma(a)))`` over its domain — under both bignum and
fixed-precision number accounting, so the space meter reads
``space(sigma)`` in O(1) per step.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from .values import Location, Value


class StoreError(KeyError):
    """Raised on reads/writes of unmapped locations (a stuck state)."""


class Store:
    """A mutable store with running space totals and a version stamp."""

    __slots__ = (
        "_cells",
        "_next_location",
        "_space_bignum",
        "_space_fixed",
        "version",
    )

    def __init__(self):
        self._cells: Dict[Location, Value] = {}
        self._next_location: Location = 0
        self._space_bignum: int = 0
        self._space_fixed: int = 0
        self.version: int = 0

    # -- allocation and access ------------------------------------------------

    def alloc(self, value: Value) -> Location:
        """Allocate a fresh location holding *value*."""
        location = self._next_location
        self._next_location += 1
        self._cells[location] = value
        self._add_space(value, 1)
        self.version += 1
        return location

    def alloc_many(self, values: Iterable[Value]) -> Tuple[Location, ...]:
        """Allocate fresh locations for several values at once."""
        return tuple(self.alloc(value) for value in values)

    def read(self, location: Location) -> Value:
        try:
            return self._cells[location]
        except KeyError:
            raise StoreError(f"read of unmapped location {location}") from None

    def write(self, location: Location, value: Value) -> None:
        """sigma[a -> v] for an already-mapped location."""
        old = self._cells.get(location)
        if old is None:
            raise StoreError(f"write to unmapped location {location}")
        self._add_space(old, -1)
        self._cells[location] = value
        self._add_space(value, 1)
        self.version += 1

    def delete_many(self, locations: Iterable[Location]) -> None:
        """Remove locations from the active store (GC / stack deletion)."""
        for location in locations:
            value = self._cells.pop(location, None)
            if value is not None:
                self._add_space(value, -1)
        self.version += 1

    def __contains__(self, location: Location) -> bool:
        return location in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def locations(self) -> Iterator[Location]:
        return iter(self._cells)

    def items(self):
        return self._cells.items()

    # -- space totals -----------------------------------------------------------

    @property
    def space_bignum(self) -> int:
        """space(sigma) under unlimited-precision number accounting."""
        return self._space_bignum

    @property
    def space_fixed(self) -> int:
        """space(sigma) under fixed-precision number accounting."""
        return self._space_fixed

    def _add_space(self, value: Value, sign: int) -> None:
        from ..space.flat import value_space

        self._space_bignum += sign * (1 + value_space(value, fixed_precision=False))
        self._space_fixed += sign * (1 + value_space(value, fixed_precision=True))

    def checkpoint_spaces(self) -> Tuple[int, int]:
        """Recompute both totals from scratch (used by integrity tests)."""
        from ..space.flat import value_space

        bignum = sum(
            1 + value_space(v, fixed_precision=False) for v in self._cells.values()
        )
        fixed = sum(
            1 + value_space(v, fixed_precision=True) for v in self._cells.values()
        )
        return bignum, fixed
