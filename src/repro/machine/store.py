"""The store: a finite function from locations to values.

Locations are allocated from a countably infinite supply (section 11
requires one); the store tracks running Figure 7 space totals —
``sum(1 + space(sigma(a)))`` over its domain — under both bignum and
fixed-precision number accounting, so the space meter reads
``space(sigma)`` in O(1) per step.  The analogous Figure 8 *structural*
totals (closures and escapes cost one word; their bindings are counted
globally by the meter's binding ledger) are maintained the same way
for linked accounting.

A :class:`Store` may carry a *tracker* — the incremental metering
engine (``repro.space.meter``) — which is notified of every mutation
so it can maintain per-location reference counts and the linked
binding ledger without rescanning the heap.

Two store invariants double as metering infrastructure: locations are
never reused (the supply counter only grows), so a location's number
orders its allocation in time — the generational engine's nursery is
simply the suffix of the domain above a watermark, and "tenured" is a
comparison, not a tag; and ``mut_version`` increments on every write
to an existing location, which is the write barrier the sampled meter
reads to tell retro-reconstructible steps from suspect ones.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from .values import (
    UNSPECIFIED,
    Boolean,
    Char,
    Closure,
    Escape,
    Location,
    Num,
    Pair,
    Primop,
    Sym,
    Value,
    _Singleton,
)

#: Bound lazily on first use: ``repro.space.flat`` imports
#: ``repro.machine.config`` which imports this module, so the import
#: cannot run at module scope; doing it inside ``_add_space`` would put
#: import machinery on the alloc/write/delete hot path instead.
_value_space = None


def _bind_value_space():
    global _value_space
    from ..space.flat import value_space

    _value_space = value_space
    return value_space


#: 1 + space(v) for exact value classes whose Figure 7 space is a
#: class constant under both number accountings (and whose Figure 8
#: structural cost coincides): immediates cost one word, pairs three.
_CELL_WORDS = {
    Boolean: 2,
    Sym: 2,
    Char: 2,
    Pair: 4,
    Primop: 2,
    _Singleton: 2,
}


class StoreError(KeyError):
    """Raised on reads/writes of unmapped locations (a stuck state)."""


class Store:
    """A mutable store with running space totals and a version stamp."""

    __slots__ = (
        "_cells",
        "_next_location",
        "_space_bignum",
        "_space_fixed",
        "_linked_bignum",
        "_linked_fixed",
        "version",
        "mut_version",
        "tracker",
        "_rc",
        "_escaped",
    )

    def __init__(self, track_refs: bool = False):
        self._cells: Dict[Location, Value] = {}
        self._next_location: Location = 0
        self._space_bignum: int = 0
        self._space_fixed: int = 0
        self._linked_bignum: int = 0
        self._linked_fixed: int = 0
        self.version: int = 0
        #: Bumped only by :meth:`write` and :meth:`delete_many` (never
        #: by allocation, which cannot change an existing cell).  An
        #: unchanged ``mut_version`` therefore proves every mapped cell
        #: still holds the value it held before — the guard behind the
        #: gen-3 generated code's per-site global-variable value caches.
        self.mut_version: int = 0
        self.tracker = None
        #: Store-edge inbound reference counts (location -> number of
        #: store cells whose value mentions it), maintained only when
        #: requested (the I_stack frame-pop fast path); None otherwise.
        #: Root edges (environments, continuations) are *not* counted —
        #: the consumer must rule them out by other means (the
        #: monotonic-location argument in ``Machine._delete_frame``).
        self._rc: Optional[Dict[Location, int]] = (
            {} if track_refs else None
        )
        #: Sticky flag: an escape procedure was created against this
        #: store.  Escapes root their captured continuation invisibly
        #: to store-edge counts (``Escape.locations()`` is the tag
        #: only), so any consumer of ``_rc`` must fall back to full
        #: reachability once this is set.
        self._escaped: bool = False

    def note_escape(self) -> None:
        """Record that an escape procedure now exists (see ``_escaped``)."""
        self._escaped = True

    # -- allocation and access ------------------------------------------------

    def alloc(self, value: Value) -> Location:
        """Allocate a fresh location holding *value*.

        The Num/Closure space bookkeeping is inlined (rather than
        calling :meth:`_add_space`) because alloc is the hottest store
        mutation; the arithmetic is identical to the method's."""
        location = self._next_location
        self._next_location = location + 1
        self._cells[location] = value
        cls = value.__class__
        if cls is Num:
            bits = abs(value.value).bit_length()
            bignum = 2 + (bits if bits > 1 else 1)
            self._space_bignum += bignum
            self._space_fixed += 2
            self._linked_bignum += bignum
            self._linked_fixed += 2
        elif cls is Closure:
            flat = 2 + len(value.env._bindings)
            self._space_bignum += flat
            self._space_fixed += flat
            self._linked_bignum += 2
            self._linked_fixed += 2
        else:
            words = _CELL_WORDS.get(cls)
            if words is not None:
                self._space_bignum += words
                self._space_fixed += words
                self._linked_bignum += words
                self._linked_fixed += words
            else:
                self._add_space(value, 1)
        self.version += 1
        rc = self._rc
        if rc is not None:
            for ref in value.locations():
                rc[ref] = rc.get(ref, 0) + 1
        if self.tracker is not None:
            self.tracker.on_alloc(location, value)
        return location

    def alloc_tag(self) -> Location:
        """``alloc(UNSPECIFIED)`` — a closure/escape tag — with the
        singleton's constant bookkeeping (2 words on every accounting)
        folded in; a store with observers takes the generic path so
        they see the identical mutation."""
        if self.tracker is None and self._rc is None:
            location = self._next_location
            self._next_location = location + 1
            self._cells[location] = UNSPECIFIED
            self._space_bignum += 2
            self._space_fixed += 2
            self._linked_bignum += 2
            self._linked_fixed += 2
            self.version += 1
            return location
        return self.alloc(UNSPECIFIED)

    def alloc_many(self, values: Iterable[Value]) -> Tuple[Location, ...]:
        """Allocate fresh locations for several values at once (the
        same mutations as repeated :meth:`alloc`, without the per-value
        method call)."""
        cells = self._cells
        add = self._add_space
        tracker = self.tracker
        rc = self._rc
        location = self._next_location
        out = []
        if rc is None and tracker is None:
            # No per-value observers: the interleaved bookkeeping below
            # collapses to the same end state, so batch it (with the
            # same inlined Num/Closure fast paths as ``alloc``).
            for value in values:
                cells[location] = value
                cls = value.__class__
                if cls is Num:
                    bits = abs(value.value).bit_length()
                    bignum = 2 + (bits if bits > 1 else 1)
                    self._space_bignum += bignum
                    self._space_fixed += 2
                    self._linked_bignum += bignum
                    self._linked_fixed += 2
                elif cls is Closure:
                    flat = 2 + len(value.env._bindings)
                    self._space_bignum += flat
                    self._space_fixed += flat
                    self._linked_bignum += 2
                    self._linked_fixed += 2
                else:
                    words = _CELL_WORDS.get(cls)
                    if words is not None:
                        self._space_bignum += words
                        self._space_fixed += words
                        self._linked_bignum += words
                        self._linked_fixed += words
                    else:
                        add(value, 1)
                out.append(location)
                location += 1
            self._next_location = location
            self.version += len(out)
            return tuple(out)
        for value in values:
            self._next_location = location + 1
            cells[location] = value
            add(value, 1)
            self.version += 1
            if rc is not None:
                for ref in value.locations():
                    rc[ref] = rc.get(ref, 0) + 1
            if tracker is not None:
                tracker.on_alloc(location, value)
            out.append(location)
            location += 1
        return tuple(out)

    def read(self, location: Location) -> Value:
        try:
            return self._cells[location]
        except KeyError:
            raise StoreError(f"read of unmapped location {location}") from None

    def get(self, location: Location) -> Optional[Value]:
        """The value at *location*, or None when unmapped (the hot-path
        read: one dict probe, caller decides stuck)."""
        return self._cells.get(location)

    def write(self, location: Location, value: Value) -> None:
        """sigma[a -> v] for an already-mapped location."""
        old = self._cells.get(location)
        if old is None:
            raise StoreError(f"write to unmapped location {location}")
        self._add_space(old, -1)
        self._cells[location] = value
        self._add_space(value, 1)
        self.version += 1
        self.mut_version += 1
        rc = self._rc
        if rc is not None:
            # get-based: an old ref may point at an already-deleted
            # location whose count was dropped with it.
            for ref in old.locations():
                n = rc.get(ref)
                if n is not None:
                    rc[ref] = n - 1
            for ref in value.locations():
                rc[ref] = rc.get(ref, 0) + 1
        if self.tracker is not None:
            self.tracker.on_write(location, old, value)

    def delete_many(self, locations: Iterable[Location]) -> None:
        """Remove locations from the active store (GC / stack deletion)."""
        tracker = self.tracker
        rc = self._rc
        for location in locations:
            value = self._cells.pop(location, None)
            if value is not None:
                self._add_space(value, -1)
                if rc is not None:
                    # get-based: a ref may point at a location deleted
                    # earlier in this same batch (its count was popped).
                    for ref in value.locations():
                        n = rc.get(ref)
                        if n is not None:
                            rc[ref] = n - 1
                    rc.pop(location, None)
                if tracker is not None:
                    tracker.on_delete(location, value)
        self.version += 1
        self.mut_version += 1

    def __contains__(self, location: Location) -> bool:
        return location in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def locations(self) -> Iterator[Location]:
        return iter(self._cells)

    def items(self):
        return self._cells.items()

    # -- space totals -----------------------------------------------------------

    @property
    def space_bignum(self) -> int:
        """space(sigma) under unlimited-precision number accounting."""
        return self._space_bignum

    @property
    def space_fixed(self) -> int:
        """space(sigma) under fixed-precision number accounting."""
        return self._space_fixed

    def linked_structural(self, fixed_precision: bool = False) -> int:
        """Figure 8 structural words of the store: 1 per cell plus the
        value's structural cost (closures and escapes cost one word;
        their bindings/frames are accounted globally)."""
        return self._linked_fixed if fixed_precision else self._linked_bignum

    def _add_space(self, value: Value, sign: int) -> None:
        # Exact-class fast paths for the values the hot loop allocates
        # (numbers, closures and their tags, pairs, immediates); each
        # adds the same four totals the generic path below computes.
        cls = value.__class__
        if cls is Num:
            bits = abs(value.value).bit_length()
            bignum = sign * (2 + (bits if bits > 1 else 1))
            fixed = 2 * sign
            self._space_bignum += bignum
            self._space_fixed += fixed
            self._linked_bignum += bignum
            self._linked_fixed += fixed
            return
        if cls is Closure:
            flat = sign * (2 + len(value.env._bindings))
            self._space_bignum += flat
            self._space_fixed += flat
            self._linked_bignum += 2 * sign
            self._linked_fixed += 2 * sign
            return
        words = _CELL_WORDS.get(cls)
        if words is not None:
            delta = sign * words
            self._space_bignum += delta
            self._space_fixed += delta
            self._linked_bignum += delta
            self._linked_fixed += delta
            return
        vs = _value_space
        if vs is None:
            vs = _bind_value_space()
        bignum = vs(value, fixed_precision=False)
        fixed = vs(value, fixed_precision=True)
        self._space_bignum += sign * (1 + bignum)
        self._space_fixed += sign * (1 + fixed)
        if isinstance(value, (Closure, Escape)):
            # Linked accounting charges closures/escapes one word; the
            # environment table / captured frames are counted globally.
            bignum = fixed = 1
        self._linked_bignum += sign * (1 + bignum)
        self._linked_fixed += sign * (1 + fixed)

    def checkpoint_spaces(self) -> Tuple[int, int]:
        """Recompute both flat totals from scratch (integrity tests)."""
        vs = _value_space
        if vs is None:
            vs = _bind_value_space()
        bignum = sum(
            1 + vs(v, fixed_precision=False) for v in self._cells.values()
        )
        fixed = sum(
            1 + vs(v, fixed_precision=True) for v in self._cells.values()
        )
        return bignum, fixed

    def checkpoint_linked_structural(self) -> Tuple[int, int]:
        """Recompute both linked structural totals from scratch."""
        vs = _value_space
        if vs is None:
            vs = _bind_value_space()

        def one(value: Value, fixed_precision: bool) -> int:
            if isinstance(value, (Closure, Escape)):
                return 1
            return vs(value, fixed_precision=fixed_precision)

        bignum = sum(1 + one(v, False) for v in self._cells.values())
        fixed = sum(1 + one(v, True) for v in self._cells.values())
        return bignum, fixed
