"""The seed transition function, preserved verbatim as an oracle.

The live stepper (:mod:`repro.machine.machine`) is *compiled once*: it
annotates the program at inject time, dispatches through class-keyed
tables, reads interned call plans, and memoizes environment
restriction.  None of that may change a single transition — and the
way the test suite holds it to that is this module, which keeps the
seed stepper exactly as it was: isinstance ladders, per-reduction
permutation validation, tuple slicing in the push rule, fresh
free-variable unions in the I_sfs hooks, and the probe-dict
``restrict`` without memoization.

:class:`SeedStepper` and its variants quack like
:class:`~repro.machine.machine.Machine` (``inject`` / ``step`` /
``compact`` / ``apply_procedure`` / ``policy`` / ``uses_gc_rule``), so
the meter and the harness can drive either interchangeably:
``run_metered(make_seed_stepper("sfs"), ...)`` is the seed
computation, ``run_metered(make_machine("sfs"), ...)`` the compiled
one, and the lockstep suite (``tests/test_prepass_lockstep.py``)
asserts they agree state by state and number by number.  The
throughput benchmark uses the same pair for its before/after step
rates.

The gen-2 superinstruction pass (variable quickening, fused
operand/nested-primop/if-select/β transitions — DESIGN.md §7.1)
re-exercises this module without touching it: the batched-lockstep
tests replay ``run_steps`` at every small batch size against the
per-step trace produced here, and the cross-machine differential
fuzzer (``tests/test_differential_fuzz.py``) holds every machine x
stepper x engine x accounting cell to the answer this stepper
computes.

This mirrors the metering engines' ``engine="reference"`` oracle: the
optimized path is never trusted on its own word.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..syntax.ast import Call, Expr, If, Lambda, Quote, SetBang, Var
from ..syntax.free_vars import free_vars
from .config import Configuration, Final, State
from .continuation import (
    Assign,
    CallK,
    Halt,
    Kont,
    Push,
    Return,
    ReturnStack,
    Select,
)
from .environment import EMPTY_ENV, Environment
from .errors import (
    ArityError,
    NotAProcedureError,
    StuckError,
    UnboundVariableError,
)
from .gc import reachable_locations
from .machine import _arity_text, constant_value
from .policy import LeftToRight, Policy
from .store import Store
from .values import (
    Closure,
    Escape,
    Location,
    Primop,
    UNDEFINED,
    UNSPECIFIED,
    Value,
    is_true,
)
from .variants import TaggedReturn


def _seed_restrict(env: Environment, names: Iterable[str]) -> Environment:
    """The seed ``Environment.restrict``: probe-dict build on every
    call, no memoization, no superset short-circuit (reaches into the
    environment's binding dict exactly as the method did)."""
    bindings = env._bindings
    wanted = names if isinstance(names, (set, frozenset)) else frozenset(names)
    if len(wanted) >= len(bindings):
        kept = {name: loc for name, loc in bindings.items() if name in wanted}
        if len(kept) == len(bindings):
            return env
        return Environment(kept)
    return Environment(
        {name: bindings[name] for name in wanted if name in bindings}
    )


def _seed_free_vars_of_all(exprs: Tuple[Expr, ...]):
    """The seed ``free_vars_of_all``: a fresh union per call."""
    result = frozenset()
    for expr in exprs:
        result |= free_vars(expr)
    return result


class SeedStepper:
    """I_tail exactly as the seed implemented it."""

    name = "tail"
    uses_gc_rule = True

    def __init__(self, policy: Optional[Policy] = None):
        self.policy = policy if policy is not None else LeftToRight()
        # Telemetry sink, same contract as Machine.trace: None costs
        # one check per run_steps call (the loop itself is per-step
        # already, so tracing adds only the emit).
        self.trace = None

    # -- injection (seed: imports were in-function; no annotation pass) --

    def inject(
        self,
        program: Expr,
        argument: Optional[Expr] = None,
        store: Optional[Store] = None,
        global_env: Optional[Environment] = None,
        trim_globals: bool = True,
    ) -> State:
        from .primitives import make_initial_environment

        if store is None:
            store = Store()
        if global_env is None:
            names = None
            if trim_globals:
                names = set(free_vars(program))
                if argument is not None:
                    names |= free_vars(argument)
            global_env = make_initial_environment(store, names)
        expr = Call((program, argument)) if argument is not None else program
        self.policy.reset()
        return State(expr, False, global_env, Halt(), store)

    # -- the seed transition function ------------------------------------

    def step(self, state: State) -> Configuration:
        if state.is_value:
            return self._step_value(state)
        return self._step_expr(state)

    def run_steps(self, state: State, limit: int):
        """The seed run loop: one :meth:`step` call per transition
        (the driver interface the fused loop of the live stepper
        implements; here it is deliberately NOT fused, because this
        class preserves the seed's per-step costs for the before/after
        benchmark)."""
        step = self.step
        bus = self.trace
        steps = 0
        while steps < limit:
            if bus is not None:
                bus.emit_step_state(state)
            configuration = step(state)
            steps += 1
            if configuration.is_final:
                return configuration, steps
            state = configuration
        return state, steps

    def _step_expr(self, state: State) -> Configuration:
        expr = state.control
        env = state.env
        store = state.store
        if isinstance(expr, Quote):
            return state.with_value(constant_value(expr.value), env, state.kont)
        if isinstance(expr, Var):
            location = env.lookup(expr.name)
            if location is None:
                raise UnboundVariableError(f"unbound variable: {expr.name}")
            if location not in store:
                raise UnboundVariableError(
                    f"variable {expr.name} refers to an unmapped location"
                )
            value = store.read(location)
            if value is UNDEFINED:
                raise UnboundVariableError(
                    f"variable {expr.name} read before initialization"
                )
            return state.with_value(value, env, state.kont)
        if isinstance(expr, Lambda):
            closed = self.closure_env(expr, env)
            tag = store.alloc(UNSPECIFIED)
            return state.with_value(Closure(tag, expr, closed), env, state.kont)
        if isinstance(expr, If):
            saved = self.select_env(env, expr.consequent, expr.alternative)
            kont = Select(expr.consequent, expr.alternative, saved, state.kont)
            return state.with_expr(expr.test, env, kont)
        if isinstance(expr, SetBang):
            saved = self.assign_env(env, expr.name)
            kont = Assign(expr.name, saved, state.kont)
            return state.with_expr(expr.expr, env, kont)
        if isinstance(expr, Call):
            order = self.policy.permutation(len(expr.exprs))
            if sorted(order) != list(range(len(expr.exprs))):
                raise StuckError(f"policy returned a non-permutation: {order}")
            first = expr.exprs[order[0]]
            pending = tuple(expr.exprs[i] for i in order[1:])
            saved = self.call_env(env, pending)
            kont = Push(pending, (), order, saved, state.kont, site=expr)
            return state.with_expr(first, env, kont)
        raise StuckError(f"not a Core Scheme expression: {expr!r}")

    def _step_value(self, state: State) -> Configuration:
        value = state.control
        kont = state.kont
        if isinstance(kont, Halt):
            return Final(value, state.store)
        if isinstance(kont, Select):
            branch = kont.consequent if is_true(value) else kont.alternative
            return state.with_expr(branch, kont.env, kont.parent)
        if isinstance(kont, Assign):
            location = kont.env.lookup(kont.name)
            if location is None or location not in state.store:
                raise UnboundVariableError(
                    f"assignment to unbound variable: {kont.name}"
                )
            state.store.write(location, value)
            return state.with_value(UNSPECIFIED, kont.env, kont.parent)
        if isinstance(kont, Push):
            return self._step_push(state, value, kont)
        if isinstance(kont, CallK):
            return self.apply_procedure(state, value, kont.args, kont.parent)
        if isinstance(kont, ReturnStack):
            self._delete_frame(state, value, kont)
            return state.with_value(value, kont.env, kont.parent)
        if isinstance(kont, Return):
            return state.with_value(value, kont.env, kont.parent)
        raise StuckError(f"unknown continuation: {kont!r}")

    def _step_push(self, state: State, value: Value, kont: Push) -> Configuration:
        if kont.pending:
            next_expr = kont.pending[0]
            rest = kont.pending[1:]
            saved = self.push_env(kont.env, rest)
            new_kont = Push(
                rest, kont.done + (value,), kont.order, saved, kont.parent,
                site=kont.site,
            )
            return state.with_expr(next_expr, kont.env, new_kont)
        values_in_order = kont.done + (value,)
        original: list = [None] * len(values_in_order)
        for position, evaluated in zip(kont.order, values_in_order):
            original[position] = evaluated
        operator = original[0]
        args = tuple(original[1:])
        return state.with_value(
            operator, kont.env, CallK(args, kont.parent, site=kont.site)
        )

    # -- procedure application --------------------------------------------

    def apply_procedure(
        self, state: State, operator: Value, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        if isinstance(operator, Closure):
            return self._apply_closure(state, operator, args, kont)
        if isinstance(operator, Primop):
            return self._apply_primop(state, operator, args, kont)
        if isinstance(operator, Escape):
            if len(args) != 1:
                raise ArityError(
                    f"escape procedure expects 1 argument, got {len(args)}"
                )
            return state.with_value(args[0], EMPTY_ENV, operator.kont)
        raise NotAProcedureError(f"not a procedure: {operator!r}")

    def _apply_closure(
        self, state: State, closure: Closure, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        params = closure.lam.params
        if len(params) != len(args):
            raise ArityError(
                f"procedure expects {len(params)} arguments, got {len(args)}"
            )
        locations = state.store.alloc_many(args)
        body_env = closure.env.extend(params, locations)
        body_kont = self.call_frame(locations, state.env, kont)
        return state.with_expr(closure.lam.body, body_env, body_kont)

    def _apply_primop(
        self, state: State, primop: Primop, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        if primop.arity is not None:
            low, high = primop.arity
            if len(args) < low or (high is not None and len(args) > high):
                raise ArityError(
                    f"{primop.name} expects {_arity_text(low, high)} arguments, "
                    f"got {len(args)}"
                )
        if primop.controls:
            return primop.proc(self, state, args, kont)
        result = primop.proc(self, state.store, args)
        return state.with_value(result, state.env, kont)

    # -- the seed hooks (I_tail defaults) ----------------------------------

    def closure_env(self, lam: Lambda, env: Environment) -> Environment:
        return env

    def select_env(self, env: Environment, consequent: Expr, alternative: Expr):
        return env

    def assign_env(self, env: Environment, name: str) -> Environment:
        return env

    def call_env(self, env: Environment, pending: Tuple[Expr, ...]) -> Environment:
        return env

    def push_env(self, env: Environment, rest: Tuple[Expr, ...]) -> Environment:
        return env

    def call_frame(
        self,
        frame_locations: Tuple[Location, ...],
        caller_env: Environment,
        kont: Kont,
    ) -> Kont:
        return kont

    def compact(self, state: State) -> State:
        return state

    def _delete_frame(self, state: State, value: Value, kont: ReturnStack) -> None:
        store = state.store
        candidates = [loc for loc in kont.frame if loc in store]
        if not candidates:
            return
        live = reachable_locations(store, (value,), kont.env, kont.parent)
        deletable = [loc for loc in candidates if loc not in live]
        if deletable:
            store.delete_many(deletable)

    def __repr__(self) -> str:
        return f"<seed:{type(self).__name__} policy={self.policy!r}>"


class SeedGc(SeedStepper):
    name = "gc"

    def call_frame(self, frame_locations, caller_env, kont):
        return Return(caller_env, kont)


class SeedStack(SeedStepper):
    name = "stack"
    uses_gc_rule = False

    def call_frame(self, frame_locations, caller_env, kont):
        return ReturnStack(frame_locations, caller_env, kont)


class SeedEvlis(SeedStepper):
    name = "evlis"

    def call_env(self, env, pending):
        if not pending:
            return EMPTY_ENV
        return env

    def push_env(self, env, rest):
        if not rest:
            return EMPTY_ENV
        return env


class SeedFree(SeedStepper):
    name = "free"

    def closure_env(self, lam, env):
        return _seed_restrict(env, free_vars(lam))


class SeedSfs(SeedStepper):
    name = "sfs"

    def closure_env(self, lam, env):
        return _seed_restrict(env, free_vars(lam))

    def select_env(self, env, consequent, alternative):
        return _seed_restrict(env, free_vars(consequent) | free_vars(alternative))

    def assign_env(self, env, name):
        return _seed_restrict(env, (name,))

    def call_env(self, env, pending):
        return _seed_restrict(env, _seed_free_vars_of_all(pending))

    def push_env(self, env, rest):
        return _seed_restrict(env, _seed_free_vars_of_all(rest))


class SeedBigloo(SeedGc):
    name = "bigloo"

    def apply_procedure(self, state, operator, args, kont):
        if (
            isinstance(operator, Closure)
            and isinstance(kont, TaggedReturn)
            and kont.code is operator.lam
            and len(operator.lam.params) == len(args)
        ):
            locations = state.store.alloc_many(args)
            body_env = operator.env.extend(operator.lam.params, locations)
            return state.with_expr(operator.lam.body, body_env, kont)
        return super().apply_procedure(state, operator, args, kont)

    def _apply_closure(self, state, closure, args, kont):
        if len(closure.lam.params) != len(args):
            return super()._apply_closure(state, closure, args, kont)
        locations = state.store.alloc_many(args)
        body_env = closure.env.extend(closure.lam.params, locations)
        body_kont = TaggedReturn(closure.lam, state.env, kont)
        return state.with_expr(closure.lam.body, body_env, body_kont)


class SeedMta(SeedGc):
    name = "mta"

    def compact(self, state):
        from .variants import _rebuild_frame

        frames = []
        kont = state.kont
        changed = False
        while kont.parent is not None:
            if type(kont) is Return and type(kont.parent) is Return:
                changed = True
            else:
                frames.append(kont)
            kont = kont.parent
        if not changed:
            return state
        rebuilt = kont
        for frame in reversed(frames):
            rebuilt = _rebuild_frame(frame, rebuilt)
        return State(
            state.control, state.is_value, state.env, rebuilt, state.store
        )


#: Seed steppers by machine name — same keys as ``variants.ALL_MACHINES``.
SEED_STEPPERS = {
    "tail": SeedStepper,
    "gc": SeedGc,
    "stack": SeedStack,
    "evlis": SeedEvlis,
    "free": SeedFree,
    "sfs": SeedSfs,
    "bigloo": SeedBigloo,
    "mta": SeedMta,
}


def make_seed_stepper(name: str, **kwargs) -> SeedStepper:
    """Instantiate the preserved seed stepper for machine *name*."""
    try:
        cls = SEED_STEPPERS[name]
    except KeyError:
        known = ", ".join(sorted(SEED_STEPPERS))
        raise ValueError(f"unknown machine {name!r}; known: {known}") from None
    return cls(**kwargs)
