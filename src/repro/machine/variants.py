"""The family of reference implementations (sections 7-10, 14).

======================  =====================================================
class                   paper semantics
======================  =====================================================
:class:`TailMachine`    I_tail  — properly tail recursive (section 7)
:class:`GcMachine`      I_gc    — return continuation for every call (§8)
:class:`StackMachine`   I_stack — Algol-like stack allocation of frames (§8)
:class:`EvlisMachine`   I_evlis — evlis tail recursion (section 9)
:class:`FreeMachine`    I_free  — closures over free variables only (§10)
:class:`SfsMachine`     I_sfs   — safe for space complexity (section 10)
:class:`BiglooMachine`  the §14 dilemma: proper for *self* tail calls only
                        (a Bigloo-like C-target implementation)
======================  =====================================================
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ..syntax.ast import Expr, Lambda
from ..syntax.free_vars import (
    branch_free_vars,
    free_vars,
    free_vars_of_all,
    name_set,
)
from .config import State
from .continuation import Kont, Return, ReturnStack
from .environment import EMPTY_ENV, Environment
from .machine import Machine
from .values import Closure, Location


class TailMachine(Machine):
    """I_tail: Figure 5 verbatim — an alias of the base machine."""

    __slots__ = ()

    name = "tail"


class GcMachine(Machine):
    """I_gc: every procedure call creates a return:(rho, kappa) frame.

    "By creating a continuation for every procedure call, these rules
    waste space for no reason."
    """

    __slots__ = ()

    name = "gc"
    call_frame_kind = "return"

    def call_frame(
        self,
        frame_locations: Tuple[Location, ...],
        caller_env: Environment,
        kont: Kont,
    ) -> Kont:
        return Return(caller_env, kont)


class StackMachine(Machine):
    """I_stack: every call creates return:(A, rho, kappa) with the
    deletion set A = the whole argument frame.

    The paper: "it is always possible to choose A = {b1, ..., bn} ...
    This choice of A always consumes the most space, so it determines
    the space consumption S_stack."  Frame locations are retained until
    the frame returns; at return the machine deletes every frame
    location whose deletion creates no dangling pointer (the maximal
    choice that keeps the computation from getting stuck, Definition
    21).

    I_stack realizes section 5's *deletion strategy*: "A deletion
    strategy reclaims storage at statically determined points in the
    program, whereas a retention strategy retains storage until it is
    no longer needed, as determined by dynamic means such as garbage
    collection."  Accordingly it does NOT use the garbage collection
    rule — frame deletion is its only reclamation, the discipline of
    Algol-like stack allocation.  This is what makes Theorem 25's
    first separation work: heap structure allocated by standard
    procedures (the vector cells of ``(make-vector ...)``) is reclaimed
    by I_gc's collector as soon as it is unreachable, but by I_stack
    never, because no deletion set ever contains it.
    """

    __slots__ = ()

    name = "stack"
    call_frame_kind = "return-stack"
    uses_gc_rule = False
    # Injected stores keep store-edge reference counts so frame
    # deletion (the dominant cost of I_stack) can usually skip the full
    # reachability walk (see Machine._delete_frame).
    track_refs = True

    def call_frame(
        self,
        frame_locations: Tuple[Location, ...],
        caller_env: Environment,
        kont: Kont,
    ) -> Kont:
        return ReturnStack(frame_locations, caller_env, kont)


class EvlisMachine(Machine):
    """I_evlis: the environment is not preserved across the evaluation
    of the last subexpression of a procedure call (section 9).

    The environment drop applies whenever the subexpression about to be
    evaluated is the last one of its call — including the case of a
    call with a single subexpression such as ``((g))``, where the
    operator is the last (and only) subexpression and the call
    reduction rule itself saves the empty environment.  (The paper
    displays only the two replaced push rules; Theorem 25's separation
    of O(S_tail) from O(S_evlis) uses the program ``((g))`` and needs
    this case, which is also the behaviour of the evlis interpreters
    of Wand [Wan80] and Queinnec [Que96].)
    """

    __slots__ = ()

    name = "evlis"
    call_env_kind = "drop-empty"
    push_env_kind = "drop-empty"

    def call_env(self, env: Environment, pending: Tuple[Expr, ...]) -> Environment:
        if not pending:
            return EMPTY_ENV
        return env

    def push_env(self, env: Environment, rest: Tuple[Expr, ...]) -> Environment:
        if not rest:
            return EMPTY_ENV
        return env


class FreeMachine(Machine):
    """I_free: closures capture only their free variables (section 10),
    everything else as I_tail."""

    __slots__ = ()

    name = "free"
    closure_env_kind = "restrict-free-vars"

    def closure_env(self, lam: Lambda, env: Environment) -> Environment:
        return env.restrict(free_vars(lam))


class SfsMachine(Machine):
    """I_sfs: safe for space complexity in the sense of Appel.

    Closures capture free variables only, and every environment saved
    in a continuation is restricted to the free variables of the
    expressions that will be evaluated in it (section 10).  The push
    restriction subsumes evlis tail recursion: when no expressions
    remain, FV() = {} and the saved environment is empty.
    """

    __slots__ = ()

    name = "sfs"
    call_env_kind = "restrict-fv"
    push_env_kind = "restrict-fv"
    closure_env_kind = "restrict-free-vars"
    select_env_kind = "restrict-branch-fv"

    def closure_env(self, lam: Lambda, env: Environment) -> Environment:
        return env.restrict(free_vars(lam))

    def select_env(self, env: Environment, consequent: Expr, alternative: Expr):
        return env.restrict(branch_free_vars(consequent, alternative))

    def assign_env(self, env: Environment, name: str) -> Environment:
        return env.restrict(name_set(name))

    def call_env(self, env: Environment, pending: Tuple[Expr, ...]) -> Environment:
        return env.restrict(free_vars_of_all(pending))

    def push_env(self, env: Environment, rest: Tuple[Expr, ...]) -> Environment:
        return env.restrict(free_vars_of_all(rest))


class TaggedReturn(Return):
    """A return frame remembering which lambda it was created for,
    so the Bigloo-style machine can recognize simple self tail calls."""

    __slots__ = ("code",)

    def __init__(self, code: Lambda, env: Environment, parent: Kont):
        super().__init__(env, parent)
        self.code = code


class BiglooMachine(GcMachine):
    """The section 14 dilemma, made concrete.

    Implementations that compile to C (Bigloo, per its manual) make
    "all simple tail recursions" consume no stack but push a frame for
    every other call.  This machine treats a call as a goto only when
    it is a *self* tail call — the continuation at the call is exactly
    the return frame created when the same lambda was entered; every
    other call pushes a fresh return frame.

    It fails on continuation-passing style and on the find-leftmost
    example of section 4, exactly as the paper describes.
    """

    __slots__ = ()

    name = "bigloo"
    apply_kind = "closure-only"
    gen3_apply = "tagged-self-reuse"
    gen3_tagged = TaggedReturn

    def apply_procedure(self, state, operator, args, kont):
        if (
            isinstance(operator, Closure)
            and isinstance(kont, TaggedReturn)
            and kont.code is operator.lam
            and len(operator.lam.params) == len(args)
        ):
            # Simple self tail call: jump, reusing the existing frame.
            locations = state.store.alloc_many(args)
            body_env = operator.env.extend(operator.lam.params, locations)
            return state.with_expr(operator.lam.body, body_env, kont)
        return super().apply_procedure(state, operator, args, kont)

    def _apply_closure(self, state, closure, args, kont):
        if len(closure.lam.params) != len(args):
            return super()._apply_closure(state, closure, args, kont)  # ArityError
        locations = state.store.alloc_many(args)
        body_env = closure.env.extend(closure.lam.params, locations)
        body_kont = TaggedReturn(closure.lam, state.env, kont)
        return state.with_expr(closure.lam.body, body_env, body_kont)


class MtaMachine(GcMachine):
    """Baker's "Cheney on the M.T.A." technique [Bak95], section 14.

    "One of the standard techniques for generating properly tail
    recursive C code is to allocate stack frames for all calls, but to
    perform periodic garbage collection of stack frames as well as
    heap nodes.  A definition of proper tail recursion that is based
    on asymptotic space complexity allows this technique.  To my
    knowledge, no other formal definitions do."

    Mechanically: every call pushes a return:(rho, kappa) frame,
    exactly like I_gc — and the collector additionally *compacts* the
    continuation, collapsing every run of consecutive return frames to
    its outermost frame.  Two adjacent return frames are equivalent
    because popping return:(rho1, return:(rho2, kappa)) restores rho1
    only to immediately overwrite it with rho2: runs of returns appear
    exactly where tail calls pushed frames.  Between collections up to
    gc_interval frames pile up (Baker's stack buffer), so the space
    consumption is within a constant of S_tail — properly tail
    recursive by Definition 5 even though every call "pushes stack".
    """

    __slots__ = ()

    name = "mta"

    def compact(self, state):
        """Collapse runs of consecutive Return frames in the register
        continuation (called by the meter alongside the GC rule)."""
        frames = []
        kont = state.kont
        changed = False
        while kont.parent is not None:
            if type(kont) is Return and type(kont.parent) is Return:
                changed = True  # skip: the parent return supersedes it
            else:
                frames.append(kont)
            kont = kont.parent
        if not changed:
            return state
        rebuilt = kont  # halt
        for frame in reversed(frames):
            rebuilt = _rebuild_frame(frame, rebuilt)
        return State(
            state.control, state.is_value, state.env, rebuilt, state.store
        )


def _rebuild_frame(frame: Kont, parent: Kont) -> Kont:
    """Copy *frame* onto a new parent (continuations are immutable)."""
    from .continuation import Assign, CallK, Push, ReturnStack, Select

    if type(frame) is Return:
        return Return(frame.env, parent)
    if type(frame) is Select:
        return Select(frame.consequent, frame.alternative, frame.env, parent)
    if type(frame) is Assign:
        return Assign(frame.name, frame.env, parent)
    if type(frame) is Push:
        return Push(
            frame.pending, frame.done, frame.order, frame.env, parent,
            frame.site, frame.plan,
        )
    if type(frame) is CallK:
        return CallK(frame.args, parent, frame.site)
    if type(frame) is ReturnStack:
        return ReturnStack(frame.frame, frame.env, parent)
    raise TypeError(f"cannot rebuild frame {frame!r}")


#: All six reference implementations of the paper, by name.
REFERENCE_MACHINES: Dict[str, Type[Machine]] = {
    "tail": TailMachine,
    "gc": GcMachine,
    "stack": StackMachine,
    "evlis": EvlisMachine,
    "free": FreeMachine,
    "sfs": SfsMachine,
}

#: Machines including the section 14 variants (the Bigloo-style
#: self-call-only machine and Baker's MTA technique).
ALL_MACHINES: Dict[str, Type[Machine]] = dict(
    REFERENCE_MACHINES, bigloo=BiglooMachine, mta=MtaMachine
)


def make_machine(name: str, **kwargs) -> Machine:
    """Instantiate a reference implementation by name."""
    try:
        cls = ALL_MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(ALL_MACHINES))
        raise ValueError(f"unknown machine {name!r}; known: {known}") from None
    return cls(**kwargs)


#: Stepper selections for :func:`make_stepper` (and the harness/CLI
#: ``--stepper`` knobs built on it).
STEPPERS = ("annotated", "gen3", "gen2", "seed")


def make_stepper(name: str, stepper: str = "annotated", policy=None):
    """Instantiate *name*'s engine under a stepper selection.

    ``"annotated"`` is the live stepper with the full tier stack (the
    gen-3 compiled tier engages where the variant is eligible);
    ``"gen3"`` says the same thing explicitly (differential runs name
    the tier they mean); ``"gen2"`` turns the gen-3 tier off, leaving
    the gen-2 superinstruction stepper; ``"seed"`` is the preserved
    seed stepper of :mod:`repro.machine.reference_step`.  All four
    compute identical answers, step counts, and space numbers — the
    lockstep and differential-fuzz suites hold them equal — so this
    knob exists for differential testing and before/after
    benchmarking, not for semantics."""
    if stepper not in STEPPERS:
        known = ", ".join(STEPPERS)
        raise ValueError(f"unknown stepper {stepper!r}; known: {known}")
    kwargs = {} if policy is None else {"policy": policy}
    if stepper == "seed":
        from .reference_step import make_seed_stepper

        return make_seed_stepper(name, **kwargs)
    if stepper == "gen2":
        kwargs["gen3"] = False
    elif stepper == "gen3":
        kwargs["gen3"] = True
    return make_machine(name, **kwargs)
