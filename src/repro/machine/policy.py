"""Evaluation policies: the nondeterministic choices of the semantics.

The paper's machines are nondeterministic in

- the permutation pi chosen for each procedure call's subexpressions,
- the locations allocated (handled by the store's counter; all choices
  are alpha-convertible, Lemma 14),
- whether/when to apply the GC rule (handled by the meter),
- the deletion set A of I_stack (handled by the variant).

A :class:`Policy` fixes the permutation choice and seeds ``(random n)``
so that runs are reproducible and choices can be *matched* across
machines, as the proofs of Theorems 19 and 24 require.
"""

from __future__ import annotations

import random
from typing import Tuple


class Policy:
    """Deterministic realization of the machine's nondeterminism."""

    name = "abstract"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def permutation(self, count: int) -> Tuple[int, ...]:
        """The evaluation order for a call with *count* subexpressions
        (operator at index 0): ``result[j]`` is the original position
        of the j-th subexpression to be evaluated."""
        raise NotImplementedError

    def random_integer(self, bound: int) -> int:
        """The value of ``(random bound)``: an integer in [0, bound)."""
        return self._rng.randrange(bound)

    def reset(self) -> None:
        """Restore the initial RNG state (for matched reruns)."""
        self._rng = random.Random(self.seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


class LeftToRight(Policy):
    """Evaluate operator first, then operands left to right."""

    name = "left-to-right"

    def permutation(self, count: int) -> Tuple[int, ...]:
        return tuple(range(count))


class RightToLeft(Policy):
    """Evaluate operands right to left, operator last."""

    name = "right-to-left"

    def permutation(self, count: int) -> Tuple[int, ...]:
        return tuple(reversed(range(count)))


class OperatorLast(Policy):
    """Operands left to right, operator last (SML-like)."""

    name = "operator-last"

    def permutation(self, count: int) -> Tuple[int, ...]:
        return tuple(range(1, count)) + (0,)


class Shuffled(Policy):
    """A seeded random permutation per call site occurrence."""

    name = "shuffled"

    def permutation(self, count: int) -> Tuple[int, ...]:
        order = list(range(count))
        self._rng.shuffle(order)
        return tuple(order)


DEFAULT_POLICY_FACTORY = LeftToRight
