"""Evaluation policies: the nondeterministic choices of the semantics.

The paper's machines are nondeterministic in

- the permutation pi chosen for each procedure call's subexpressions,
- the locations allocated (handled by the store's counter; all choices
  are alpha-convertible, Lemma 14),
- whether/when to apply the GC rule (handled by the meter),
- the deletion set A of I_stack (handled by the variant).

A :class:`Policy` fixes the permutation choice and seeds ``(random n)``
so that runs are reproducible and choices can be *matched* across
machines, as the proofs of Theorems 19 and 24 require.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Tuple


@lru_cache(maxsize=None)
def identity_permutation(count: int) -> Tuple[int, ...]:
    """(0, 1, ..., count-1), interned — the left-to-right order.

    Deterministic policies return interned permutations so the per-call
    plan lookup of the stepper's pre-pass hashes an already-seen tuple
    and the call rule allocates nothing."""
    return tuple(range(count))


@lru_cache(maxsize=None)
def reversed_permutation(count: int) -> Tuple[int, ...]:
    """(count-1, ..., 1, 0), interned — the right-to-left order."""
    return tuple(reversed(range(count)))


@lru_cache(maxsize=None)
def operator_last_permutation(count: int) -> Tuple[int, ...]:
    """(1, ..., count-1, 0), interned — the SML-like order."""
    return tuple(range(1, count)) + (0,)


class Policy:
    """Deterministic realization of the machine's nondeterminism."""

    __slots__ = ("seed", "_rng")

    name = "abstract"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def permutation(self, count: int) -> Tuple[int, ...]:
        """The evaluation order for a call with *count* subexpressions
        (operator at index 0): ``result[j]`` is the original position
        of the j-th subexpression to be evaluated."""
        raise NotImplementedError

    def random_integer(self, bound: int) -> int:
        """The value of ``(random bound)``: an integer in [0, bound)."""
        return self._rng.randrange(bound)

    def reset(self) -> None:
        """Restore the initial RNG state (for matched reruns)."""
        self._rng = random.Random(self.seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


class LeftToRight(Policy):
    """Evaluate operator first, then operands left to right."""

    __slots__ = ()

    name = "left-to-right"

    def permutation(self, count: int) -> Tuple[int, ...]:
        return identity_permutation(count)


class RightToLeft(Policy):
    """Evaluate operands right to left, operator last."""

    __slots__ = ()

    name = "right-to-left"

    def permutation(self, count: int) -> Tuple[int, ...]:
        return reversed_permutation(count)


class OperatorLast(Policy):
    """Operands left to right, operator last (SML-like)."""

    __slots__ = ()

    name = "operator-last"

    def permutation(self, count: int) -> Tuple[int, ...]:
        return operator_last_permutation(count)


class Shuffled(Policy):
    """A seeded random permutation per call site occurrence."""

    __slots__ = ()

    name = "shuffled"

    def permutation(self, count: int) -> Tuple[int, ...]:
        order = list(range(count))
        self._rng.shuffle(order)
        return tuple(order)


DEFAULT_POLICY_FACTORY = LeftToRight
