"""Observable answers (Definition 11).

The observable answer represented by a final configuration (v, sigma)
is a (possibly infinite) sequence of output tokens: booleans print as
``#t``/``#f``, numbers and symbols as themselves, procedures and
escape procedures as ``#<PROC>``, vectors as ``#( ... )`` and lists as
``( ... )`` with their elements printed recursively through the store.

Cyclic data yields an infinite token stream, so :func:`answer` is a
generator and :func:`answer_string` takes a token budget.  Equivalence
of implementations (Corollary 20) is decided on bounded prefixes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

from .config import Final
from .store import Store
from .values import (
    Boolean,
    Char,
    Closure,
    Escape,
    NIL,
    Num,
    Pair,
    Primop,
    Str,
    Sym,
    UNDEFINED,
    UNSPECIFIED,
    Value,
    Vector,
)

Token = str


def answer(value: Value, store: Store) -> Iterator[Token]:
    """Yield the output tokens of answer(v, sigma).

    The traversal is an explicit work stack, so deep lists and cyclic
    structure never overflow the Python stack.
    """
    stack: List[Union[Value, Token]] = [value]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            yield item
            continue
        token = _immediate_token(item)
        if token is not None:
            yield token
            continue
        if isinstance(item, Vector):
            yield "#("
            stack.append(")")
            for location in reversed(item.locations_):
                stack.append(store.read(location))
            continue
        if isinstance(item, Pair):
            yield "("
            stack.append(")")
            _push_list_elements(stack, store, item)
            continue
        yield f"#<UNKNOWN {item!r}>"


def _push_list_elements(stack: List, store: Store, pair: Pair) -> None:
    """Schedule the elements of a (possibly improper or cyclic) list.

    Elements are pushed lazily: the cdr chain is walked via a sentinel
    closure so that cyclic lists produce an infinite token stream
    instead of looping forever inside this helper.
    """
    elements: List[Union[Value, Token]] = []
    current: Value = pair
    steps = 0
    seen = set()
    while True:
        if isinstance(current, Pair):
            key = (current.car_loc, current.cdr_loc)
            if key in seen:
                # Cyclic: re-emit from the repeated cell indefinitely by
                # scheduling the cell itself again; answer() will keep
                # producing tokens until the consumer stops.
                elements.append(current)
                break
            seen.add(key)
            elements.append(store.read(current.car_loc))
            current = store.read(current.cdr_loc)
            steps += 1
        elif current is NIL:
            break
        else:
            elements.append(".")
            elements.append(current)
            break
    for element in reversed(elements):
        stack.append(element)


def _immediate_token(value: Value) -> Optional[Token]:
    if isinstance(value, Boolean):
        return "#t" if value.value else "#f"
    if isinstance(value, Num):
        return str(value.value)
    if isinstance(value, Sym):
        return value.name
    if isinstance(value, Str):
        return '"' + value.value + '"'
    if isinstance(value, Char):
        return "#\\" + value.value
    if value is NIL:
        return "()"
    if isinstance(value, (Closure, Escape, Primop)):
        return "#<PROC>"
    if value is UNSPECIFIED:
        return "#<UNSPECIFIED>"
    if value is UNDEFINED:
        return "#<UNDEFINED>"
    return None


def answer_tokens(final: Final, limit: int = 10000) -> List[Token]:
    """The first *limit* tokens of the final configuration's answer."""
    tokens = []
    for token in answer(final.value, final.store):
        tokens.append(token)
        if len(tokens) >= limit:
            break
    return tokens


def answer_string(final: Final, limit: int = 10000) -> str:
    """The answer as a single string (bounded prefix for cyclic data)."""
    return _render(answer_tokens(final, limit))


def _render(tokens: List[Token]) -> str:
    pieces: List[str] = []
    for token in tokens:
        if token == ")":
            if pieces and pieces[-1] == " ":
                pieces.pop()
            pieces.append(")")
            pieces.append(" ")
            continue
        pieces.append(token)
        if not token.endswith("("):
            pieces.append(" ")
    return "".join(pieces).strip()
