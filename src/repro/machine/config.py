"""Machine configurations (Figure 4).

::

    Configuration ::= (v, sigma)            -- Final
                    | (E, rho, kappa, sigma) -- State with is_value=False
                    | (v, rho, kappa, sigma) -- State with is_value=True

The store is shared mutable state threaded through the computation;
everything else in a State is immutable.
"""

from __future__ import annotations

from typing import Union

from ..syntax.ast import Expr
from .continuation import Kont
from .environment import Environment
from .store import Store
from .values import Value


class State:
    """An intermediate configuration of the CEKS machine."""

    __slots__ = ("control", "is_value", "env", "kont", "store")

    #: Class tag letting the run loops and the meter distinguish the
    #: two configuration shapes with one attribute load instead of an
    #: ``isinstance`` call per step.
    is_final = False

    def __init__(
        self,
        control: Union[Expr, Value],
        is_value: bool,
        env: Environment,
        kont: Kont,
        store: Store,
    ):
        self.control = control
        self.is_value = is_value
        self.env = env
        self.kont = kont
        self.store = store

    def with_expr(self, expr: Expr, env: Environment, kont: Kont) -> "State":
        return State(expr, False, env, kont, self.store)

    def with_value(self, value: Value, env: Environment, kont: Kont) -> "State":
        return State(value, True, env, kont, self.store)

    def __repr__(self) -> str:
        kind = "value" if self.is_value else "expr"
        return (
            f"State({kind}={self.control!r}, |rho|={len(self.env)}, "
            f"kont={self.kont!r}, |sigma|={len(self.store)})"
        )


class Final:
    """A final configuration (v, sigma)."""

    __slots__ = ("value", "store")

    is_final = True

    def __init__(self, value: Value, store: Store):
        self.value = value
        self.store = store

    def __repr__(self) -> str:
        return f"Final({self.value!r}, |sigma|={len(self.store)})"


Configuration = Union[State, Final]
