"""Errors raised by the reference machines.

A *stuck* computation (section 7: "the transition rule cannot be
applied, and the computation will be stuck") is reported by raising
:class:`StuckError`; Definition 21 excludes stuck computations from the
space consumption sup, and the meter propagates the exception.
"""

from __future__ import annotations


class SchemeError(Exception):
    """Base class for every error signalled by this reproduction."""


class StuckError(SchemeError):
    """The machine reached a configuration no rule applies to."""


class UnboundVariableError(StuckError):
    """I not in Dom rho, rho(I) not in Dom sigma, or sigma(rho(I)) = UNDEFINED."""


class NotAProcedureError(StuckError):
    """The operator of a call evaluated to a non-procedure."""


class ArityError(StuckError):
    """A closure or primitive was called with the wrong argument count."""


class PrimitiveError(StuckError):
    """A primitive was applied to arguments outside its domain."""


class DanglingPointerError(StuckError):
    """An I_stack deletion created (or would create) a dangling pointer."""


class StepLimitExceeded(SchemeError):
    """The step budget ran out before a final configuration."""

    def __init__(self, steps: int):
        super().__init__(f"no final configuration within {steps} steps")
        self.steps = steps
