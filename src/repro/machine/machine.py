"""The CEKS reference machine (Figure 5) with variant hooks.

:class:`Machine` implements the properly tail recursive semantics
I_tail exactly; the other reference implementations of sections 8-10
are subclasses (:mod:`repro.machine.variants`) that override precisely
the hooks corresponding to the rules the paper changes:

========================  =====================================================
hook                      paper rule it parameterizes
========================  =====================================================
``closure_env``           the lambda reduction rule (I_free, I_sfs close over
                          free variables only)
``select_env``            the if reduction rule (I_sfs restricts)
``assign_env``            the set! reduction rule (I_sfs restricts)
``call_env``              the procedure-call reduction rule (I_sfs restricts
                          to the free variables of the pending expressions)
``push_env``              the push continuation rule (I_evlis drops the
                          environment before the last subexpression; I_sfs
                          restricts to the free variables of the rest)
``call_frame``            the closure-call continuation rule (I_gc creates
                          return:(rho, kappa); I_stack creates
                          return:(A, rho, kappa))
========================  =====================================================
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..syntax.ast import Call, Expr, If, Lambda, Quote, SetBang, Var
from .config import Configuration, Final, State
from .continuation import (
    Assign,
    CallK,
    Halt,
    Kont,
    Push,
    Return,
    ReturnStack,
    Select,
)
from .environment import EMPTY_ENV, Environment
from .errors import (
    ArityError,
    NotAProcedureError,
    StuckError,
    UnboundVariableError,
)
from .gc import reachable_locations
from .policy import LeftToRight, Policy
from .store import Store
from .values import (
    Char as CharValue,
    Closure,
    Escape,
    FALSE,
    Location,
    NIL,
    Num,
    Primop,
    Str,
    Sym,
    TRUE,
    UNDEFINED,
    UNSPECIFIED,
    Value,
    is_true,
)
from ..reader.datum import Char as CharDatum, Symbol


class Machine:
    """The properly tail recursive reference implementation I_tail."""

    name = "tail"

    #: Whether the semantics includes the garbage collection rule of
    #: Figure 5.  I_stack (a pure deletion strategy, section 5) sets
    #: this False: storage is reclaimed only by frame deletion.
    uses_gc_rule = True

    def __init__(self, policy: Optional[Policy] = None):
        self.policy = policy if policy is not None else LeftToRight()

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def inject(
        self,
        program: Expr,
        argument: Optional[Expr] = None,
        store: Optional[Store] = None,
        global_env: Optional[Environment] = None,
        trim_globals: bool = True,
    ) -> State:
        """Build the initial configuration.

        With an *argument*, this is Definition 23's
        ``((P D), rho_0, halt, sigma_0)``; without one, the program
        expression itself is evaluated.  ``trim_globals`` restricts
        rho_0 to the free variables of the program and argument (a
        per-program constant change to S_X; pass False for the full
        fixed rho_0 of section 12).
        """
        from ..syntax.free_vars import free_vars
        from .primitives import make_initial_environment

        if store is None:
            store = Store()
        if global_env is None:
            names = None
            if trim_globals:
                names = set(free_vars(program))
                if argument is not None:
                    names |= free_vars(argument)
            global_env = make_initial_environment(store, names)
        expr = Call((program, argument)) if argument is not None else program
        self.policy.reset()
        return State(expr, False, global_env, Halt(), store)

    # ------------------------------------------------------------------
    # The transition function
    # ------------------------------------------------------------------

    def step(self, state: State) -> Configuration:
        """One transition of Figure 5 (plus variant rules)."""
        if state.is_value:
            return self._step_value(state)
        return self._step_expr(state)

    def _step_expr(self, state: State) -> Configuration:
        expr = state.control
        env = state.env
        store = state.store
        if isinstance(expr, Quote):
            return state.with_value(constant_value(expr.value), env, state.kont)
        if isinstance(expr, Var):
            location = env.lookup(expr.name)
            if location is None:
                raise UnboundVariableError(f"unbound variable: {expr.name}")
            if location not in store:
                raise UnboundVariableError(
                    f"variable {expr.name} refers to an unmapped location"
                )
            value = store.read(location)
            if value is UNDEFINED:
                raise UnboundVariableError(
                    f"variable {expr.name} read before initialization"
                )
            return state.with_value(value, env, state.kont)
        if isinstance(expr, Lambda):
            closed = self.closure_env(expr, env)
            tag = store.alloc(UNSPECIFIED)
            return state.with_value(Closure(tag, expr, closed), env, state.kont)
        if isinstance(expr, If):
            saved = self.select_env(env, expr.consequent, expr.alternative)
            kont = Select(expr.consequent, expr.alternative, saved, state.kont)
            return state.with_expr(expr.test, env, kont)
        if isinstance(expr, SetBang):
            saved = self.assign_env(env, expr.name)
            kont = Assign(expr.name, saved, state.kont)
            return state.with_expr(expr.expr, env, kont)
        if isinstance(expr, Call):
            order = self.policy.permutation(len(expr.exprs))
            if sorted(order) != list(range(len(expr.exprs))):
                raise StuckError(f"policy returned a non-permutation: {order}")
            first = expr.exprs[order[0]]
            pending = tuple(expr.exprs[i] for i in order[1:])
            saved = self.call_env(env, pending)
            kont = Push(pending, (), order, saved, state.kont, site=expr)
            return state.with_expr(first, env, kont)
        raise StuckError(f"not a Core Scheme expression: {expr!r}")

    def _step_value(self, state: State) -> Configuration:
        value = state.control
        kont = state.kont
        if isinstance(kont, Halt):
            return Final(value, state.store)
        if isinstance(kont, Select):
            branch = kont.consequent if is_true(value) else kont.alternative
            return state.with_expr(branch, kont.env, kont.parent)
        if isinstance(kont, Assign):
            location = kont.env.lookup(kont.name)
            if location is None or location not in state.store:
                raise UnboundVariableError(
                    f"assignment to unbound variable: {kont.name}"
                )
            state.store.write(location, value)
            return state.with_value(UNSPECIFIED, kont.env, kont.parent)
        if isinstance(kont, Push):
            return self._step_push(state, value, kont)
        if isinstance(kont, CallK):
            return self.apply_procedure(state, value, kont.args, kont.parent)
        if isinstance(kont, ReturnStack):
            self._delete_frame(state, value, kont)
            return state.with_value(value, kont.env, kont.parent)
        if isinstance(kont, Return):
            return state.with_value(value, kont.env, kont.parent)
        raise StuckError(f"unknown continuation: {kont!r}")

    def _step_push(self, state: State, value: Value, kont: Push) -> Configuration:
        if kont.pending:
            next_expr = kont.pending[0]
            rest = kont.pending[1:]
            saved = self.push_env(kont.env, rest)
            new_kont = Push(
                rest, kont.done + (value,), kont.order, saved, kont.parent,
                site=kont.site,
            )
            return state.with_expr(next_expr, kont.env, new_kont)
        # All subexpressions evaluated: unpermute and form the call.
        values_in_order = kont.done + (value,)
        original: list = [None] * len(values_in_order)
        for position, evaluated in zip(kont.order, values_in_order):
            original[position] = evaluated
        operator = original[0]
        args = tuple(original[1:])
        return state.with_value(
            operator, kont.env, CallK(args, kont.parent, site=kont.site)
        )

    # ------------------------------------------------------------------
    # Procedure application
    # ------------------------------------------------------------------

    def apply_procedure(
        self, state: State, operator: Value, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        """The call continuation rule, dispatched on the operator."""
        if isinstance(operator, Closure):
            return self._apply_closure(state, operator, args, kont)
        if isinstance(operator, Primop):
            return self._apply_primop(state, operator, args, kont)
        if isinstance(operator, Escape):
            if len(args) != 1:
                raise ArityError(
                    f"escape procedure expects 1 argument, got {len(args)}"
                )
            return state.with_value(args[0], EMPTY_ENV, operator.kont)
        raise NotAProcedureError(f"not a procedure: {operator!r}")

    def _apply_closure(
        self, state: State, closure: Closure, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        params = closure.lam.params
        if len(params) != len(args):
            raise ArityError(
                f"procedure expects {len(params)} arguments, got {len(args)}"
            )
        locations = state.store.alloc_many(args)
        body_env = closure.env.extend(params, locations)
        body_kont = self.call_frame(locations, state.env, kont)
        return state.with_expr(closure.lam.body, body_env, body_kont)

    def _apply_primop(
        self, state: State, primop: Primop, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        if primop.arity is not None:
            low, high = primop.arity
            if len(args) < low or (high is not None and len(args) > high):
                raise ArityError(
                    f"{primop.name} expects {_arity_text(low, high)} arguments, "
                    f"got {len(args)}"
                )
        if primop.controls:
            return primop.proc(self, state, args, kont)
        result = primop.proc(self, state.store, args)
        return state.with_value(result, state.env, kont)

    # ------------------------------------------------------------------
    # Variant hooks (I_tail defaults)
    # ------------------------------------------------------------------

    def closure_env(self, lam: Lambda, env: Environment) -> Environment:
        """Environment captured by a closure (I_tail: all of scope)."""
        return env

    def select_env(self, env: Environment, consequent: Expr, alternative: Expr):
        """Environment saved in a select continuation."""
        return env

    def assign_env(self, env: Environment, name: str) -> Environment:
        """Environment saved in an assign continuation."""
        return env

    def call_env(self, env: Environment, pending: Tuple[Expr, ...]) -> Environment:
        """Environment saved in the push continuation at call reduction."""
        return env

    def push_env(self, env: Environment, rest: Tuple[Expr, ...]) -> Environment:
        """Environment saved when the push continuation advances."""
        return env

    def call_frame(
        self,
        frame_locations: Tuple[Location, ...],
        caller_env: Environment,
        kont: Kont,
    ) -> Kont:
        """Continuation for a closure body (I_tail: the caller's kappa
        unchanged — every call is a goto)."""
        return kont

    def compact(self, state: State) -> State:
        """Optional continuation compaction, run by the meter alongside
        the GC rule.  The base machines do nothing; Baker's MTA variant
        collapses runs of return frames here."""
        return state

    # ------------------------------------------------------------------
    # I_stack frame deletion (used only by variants with ReturnStack)
    # ------------------------------------------------------------------

    def _delete_frame(self, state: State, value: Value, kont: ReturnStack) -> None:
        """Delete the largest subset of the frame that creates no
        dangling pointer: frame locations unreachable from the
        post-return configuration."""
        store = state.store
        candidates = [loc for loc in kont.frame if loc in store]
        if not candidates:
            return
        live = reachable_locations(store, (value,), kont.env, kont.parent)
        deletable = [loc for loc in candidates if loc not in live]
        if deletable:
            store.delete_many(deletable)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} policy={self.policy!r}>"


def constant_value(constant) -> Value:
    """Map a quoted constant datum to a runtime value."""
    if isinstance(constant, bool):
        return TRUE if constant else FALSE
    if isinstance(constant, int):
        return Num(constant)
    if isinstance(constant, Symbol):
        return Sym(constant.name)
    if isinstance(constant, CharDatum):
        return CharValue(constant.value)
    if isinstance(constant, str):
        return Str(constant)
    if constant == ():
        return NIL
    raise StuckError(f"not an atomic constant: {constant!r}")


def _arity_text(low: int, high: Optional[int]) -> str:
    if high is None:
        return f"at least {low}"
    if low == high:
        return str(low)
    return f"{low} to {high}"
