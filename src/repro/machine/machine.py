"""The CEKS reference machine (Figure 5) with variant hooks.

:class:`Machine` implements the properly tail recursive semantics
I_tail exactly; the other reference implementations of sections 8-10
are subclasses (:mod:`repro.machine.variants`) that override precisely
the hooks corresponding to the rules the paper changes:

========================  =====================================================
hook                      paper rule it parameterizes
========================  =====================================================
``closure_env``           the lambda reduction rule (I_free, I_sfs close over
                          free variables only)
``select_env``            the if reduction rule (I_sfs restricts)
``assign_env``            the set! reduction rule (I_sfs restricts)
``call_env``              the procedure-call reduction rule (I_sfs restricts
                          to the free variables of the pending expressions)
``push_env``              the push continuation rule (I_evlis drops the
                          environment before the last subexpression; I_sfs
                          restricts to the free variables of the rest)
``call_frame``            the closure-call continuation rule (I_gc creates
                          return:(rho, kappa); I_stack creates
                          return:(A, rho, kappa))
========================  =====================================================

The transition function is *compiled once*: :meth:`Machine.inject`
runs the static pre-pass (:mod:`repro.compiler.prepass`), and stepping
dispatches through class-keyed tables — one handler per expression
class and per continuation class — instead of isinstance ladders.
Handlers read interned :class:`~repro.compiler.prepass.CallPlan`
suffixes rather than slicing tuples, and machines that keep a hook at
its I_tail default (identity) skip the hook call entirely.  None of
this changes a single transition: the preserved seed stepper
(:mod:`repro.machine.reference_step`) is held equal to this one —
answers, step counts, Definition 21/23 space — by the lockstep
differential suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..syntax.ast import Call, Expr, If, Lambda, Quote, SetBang, Var
from ..syntax.free_vars import free_vars
from .config import Configuration, Final, State
from .continuation import (
    Assign,
    CallK,
    Halt,
    Kont,
    Push,
    Return,
    ReturnStack,
    Select,
)
from .environment import EMPTY_ENV, Environment
from .errors import (
    ArityError,
    NotAProcedureError,
    StuckError,
    UnboundVariableError,
)
from .gc import reachable_locations
from .policy import LeftToRight, Policy
from .primitives import make_initial_environment
from .store import Store
from .values import (
    Char as CharValue,
    Closure,
    Escape,
    FALSE,
    Location,
    NIL,
    Num,
    Primop,
    Str,
    Sym,
    TRUE,
    UNDEFINED,
    UNSPECIFIED,
    Value,
    is_true,
)
from ..reader.datum import Char as CharDatum, Symbol

# Imported late in the module (after constant_value is defined) to
# close the machine <-> prepass knot; see the bottom of this file.
annotate = None
call_plan = None
quote_value = None


def _hook_kind(cls, hook_name: str, kind_name: str) -> str:
    """The declared kind of a variant hook, trusted only when the class
    that defines the hook also declares the kind (see
    ``Machine.call_env_kind``)."""
    for klass in cls.__mro__:
        if hook_name in klass.__dict__:
            if klass is Machine:
                return "identity"
            return klass.__dict__.get(kind_name, "custom")
    return "identity"


def _saved_env(machine, base, plan, j):
    """The environment saved in the *j*-th push frame of *plan*, rebuilt
    directly from *base* (the environment the call reduced in, or the
    frame environment fusion started from).

    Content-identical to the seed's chained hooks: the suffix
    free-variable sets shrink monotonically, so
    ``restrict(restrict(e, A), B) == restrict(e, B)`` whenever
    ``B <= A`` — restricting *base* once equals restricting each
    intermediate saved environment in turn.  Only called for machines
    whose hook kinds are declared (``Machine._fusable``).
    """
    if j == 0:
        if machine._default_call_env:
            return base
        if machine._call_env_fv:
            fvs = plan.suffix_fvs[0]
            return base.restrict(fvs) if fvs else EMPTY_ENV
        return base if plan.pending else EMPTY_ENV  # drop-empty
    if machine._default_push_env:
        return base
    if machine._push_env_fv:
        fvs = plan.suffix_fvs[j]
        return base.restrict(fvs) if fvs else EMPTY_ENV
    return base if plan.suffixes[j] else EMPTY_ENV  # drop-empty


def _fuse_call(machine, store, plan, vals, i, base, parent, steps, limit):
    """Inline-evaluate the run of *simple* subexpressions of a call
    starting at evaluation index *i*, without materializing the
    intermediate push frames the per-step rules would thread through.

    Simple expressions (Var, Quote, Lambda — see ``CallPlan.kinds``)
    complete in one transition that inspects neither the continuation
    nor (beyond a lookup) the environment, so the eval and advance
    steps can be counted without being individually materialized; the
    store effects (the lambda rule's tag allocation) happen in exactly
    the seed order.  Returns the registers
    ``(control, is_value, env, kont, steps)`` at the first point the
    generic loop must resume: a compound subexpression (its push frame
    is then built, content-identical to the seed's), the step budget
    running out, or the completed call (unpermuted, with its call
    continuation, ready for the application step).
    """
    kinds = plan.kinds
    pending = plan.pending
    last = len(pending)
    start = i
    fuse_lambda = machine._fuse_lambda
    closure_fv = machine._closure_env_fv
    bindings = base._bindings
    cells_get = store._cells.get
    while True:
        expr = plan.first if i == 0 else pending[i - 1]
        kind = kinds[i]
        if kind == 0 or (kind == 3 and not fuse_lambda) or steps >= limit:
            # Hand the expression to the generic loop (compound, an
            # unfusable lambda, or the batch boundary): materialize the
            # configuration the per-step rules would be in.
            return (
                expr,
                False,
                base if i == start else _saved_env(machine, base, plan, i - 1),
                Push(
                    plan.suffixes[i], tuple(vals), plan.order,
                    _saved_env(machine, base, plan, i), parent,
                    site=plan.site, plan=plan,
                ),
                steps,
            )
        steps += 1  # the evaluation step of expression i
        if kind == 1:  # Var
            name = expr.name
            location = bindings.get(name)
            if location is None:
                raise UnboundVariableError(f"unbound variable: {name}")
            value = cells_get(location)
            if value is None:
                raise UnboundVariableError(
                    f"variable {name} refers to an unmapped location"
                )
            if value is UNDEFINED:
                raise UnboundVariableError(
                    f"variable {name} read before initialization"
                )
        elif kind == 2:  # Quote
            value = quote_value(expr)
        else:  # Lambda
            closed = base.restrict(free_vars(expr)) if closure_fv else base
            value = Closure(store.alloc(UNSPECIFIED), expr, closed)
        vals.append(value)
        if steps >= limit:
            # Batch boundary holding the value at frame i.
            return (
                value,
                True,
                base if i == start else _saved_env(machine, base, plan, i - 1),
                Push(
                    plan.suffixes[i], tuple(vals[:-1]), plan.order,
                    _saved_env(machine, base, plan, i), parent,
                    site=plan.site, plan=plan,
                ),
                steps,
            )
        steps += 1  # the advance step (i < last) or the complete step
        if i < last:
            i += 1
            continue
        # Complete: unpermute and form the call.
        if plan.is_identity:
            operator = vals[0]
            args = tuple(vals[1:])
        else:
            original = [None] * len(vals)
            for position, evaluated in zip(plan.order, vals):
                original[position] = evaluated
            operator = original[0]
            args = tuple(original[1:])
        if steps < limit and machine._default_apply:
            # Fuse the application step too for the common operators,
            # mirroring the generic loop's call-continuation rule.
            ocls = operator.__class__
            if ocls is Closure:
                lam = operator.lam
                params = lam.params
                if len(params) != len(args):
                    raise ArityError(
                        f"procedure expects {len(params)} arguments, "
                        f"got {len(args)}"
                    )
                steps += 1  # the application step
                locations = store.alloc_many(args)
                body_env = operator.env.extend(params, locations)
                if not machine._default_call_frame:
                    parent = machine.call_frame(
                        locations,
                        _saved_env(machine, base, plan, last),
                        parent,
                    )
                return (lam.body, False, body_env, parent, steps)
            if ocls is Primop and not operator.controls:
                arity = operator.arity
                if arity is not None:
                    low, high = arity
                    if len(args) < low or (
                        high is not None and len(args) > high
                    ):
                        raise ArityError(
                            f"{operator.name} expects "
                            f"{_arity_text(low, high)} arguments, "
                            f"got {len(args)}"
                        )
                steps += 1  # the application step
                return (
                    operator.proc(machine, store, args),
                    True,
                    _saved_env(machine, base, plan, last),
                    parent,
                    steps,
                )
        # Escapes, control primops, overridden application (Bigloo),
        # errors, or the batch boundary: the call continuation is
        # materialized and the generic loop applies it.
        return (
            operator,
            True,
            _saved_env(machine, base, plan, last),
            CallK(args, parent, site=plan.site),
            steps,
        )


class Machine:
    """The properly tail recursive reference implementation I_tail."""

    __slots__ = (
        "policy",
        "_default_closure_env",
        "_default_select_env",
        "_default_assign_env",
        "_default_call_env",
        "_default_push_env",
        "_default_call_frame",
        "_default_apply",
        "_call_env_fv",
        "_call_env_drop",
        "_push_env_fv",
        "_push_env_drop",
        "_closure_env_fv",
        "_fusable",
        "_fuse_lambda",
        "trace",
    )

    name = "tail"

    #: Declared shape of the ``call_env`` / ``push_env`` overrides, so
    #: the fused run loop can specialize them: ``"identity"`` (the
    #: I_tail default), ``"restrict-fv"`` (restrict to the free
    #: variables of the pending expressions — I_sfs; the loop then
    #: reads the interned set off the call plan instead of re-deriving
    #: it), ``"drop-empty"`` (the environment is dropped exactly when
    #: nothing is pending — I_evlis), or ``"custom"`` (always call the
    #: hook).  A declaration is honoured only when it appears in the
    #: same class body as the override it describes (checked against
    #: the MRO), so a subclass overriding a hook without re-declaring
    #: its kind safely degrades to ``"custom"``.
    call_env_kind = "identity"
    push_env_kind = "identity"

    #: Declared shape of the ``closure_env`` override, same trust model
    #: as above: ``"identity"`` (I_tail), ``"restrict-free-vars"``
    #: (close over the lambda's free variables — I_free, I_sfs), or
    #: ``"custom"``.
    closure_env_kind = "identity"

    #: Whether the semantics includes the garbage collection rule of
    #: Figure 5.  I_stack (a pure deletion strategy, section 5) sets
    #: this False: storage is reclaimed only by frame deletion.
    uses_gc_rule = True

    def __init__(self, policy: Optional[Policy] = None):
        self.policy = policy if policy is not None else LeftToRight()
        # A hook still at its I_tail default is the identity on the
        # environment (or the caller's kappa): the dispatch handlers
        # skip the call entirely then.  Computed once per instance so
        # subclass overrides — including overrides added by further
        # subclasses — are always honoured.
        cls = type(self)
        self._default_closure_env = cls.closure_env is Machine.closure_env
        self._default_select_env = cls.select_env is Machine.select_env
        self._default_assign_env = cls.assign_env is Machine.assign_env
        self._default_call_env = cls.call_env is Machine.call_env
        self._default_push_env = cls.push_env is Machine.push_env
        self._default_call_frame = cls.call_frame is Machine.call_frame
        self._default_apply = (
            cls.apply_procedure is Machine.apply_procedure
            and cls._apply_closure is Machine._apply_closure
        )
        call_kind = _hook_kind(cls, "call_env", "call_env_kind")
        push_kind = _hook_kind(cls, "push_env", "push_env_kind")
        closure_kind = _hook_kind(cls, "closure_env", "closure_env_kind")
        self._call_env_fv = call_kind == "restrict-fv"
        self._call_env_drop = call_kind == "drop-empty"
        self._push_env_fv = push_kind == "restrict-fv"
        self._push_env_drop = push_kind == "drop-empty"
        self._closure_env_fv = closure_kind == "restrict-free-vars"
        # Argument fusion (see _fuse_call) needs both saved-environment
        # hooks to have a declared kind; a lambda operand may be fused
        # only when its captured environment is reconstructible from
        # the unrestricted base environment.
        self._fusable = (
            self._default_call_env or self._call_env_fv or self._call_env_drop
        ) and (
            self._default_push_env or self._push_env_fv or self._push_env_drop
        )
        self._fuse_lambda = self._closure_env_fv or (
            self._default_closure_env
            and not (self._call_env_fv or self._push_env_fv)
        )
        #: Telemetry sink (a ``repro.telemetry.bus.TraceBus``) or None.
        #: The only cost when unset is one ``is None`` check per batch.
        self.trace = None

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def inject(
        self,
        program: Expr,
        argument: Optional[Expr] = None,
        store: Optional[Store] = None,
        global_env: Optional[Environment] = None,
        trim_globals: bool = True,
    ) -> State:
        """Build the initial configuration.

        With an *argument*, this is Definition 23's
        ``((P D), rho_0, halt, sigma_0)``; without one, the program
        expression itself is evaluated.  ``trim_globals`` restricts
        rho_0 to the free variables of the program and argument (a
        per-program constant change to S_X; pass False for the full
        fixed rho_0 of section 12).

        Injection runs the static pre-pass over the injected
        expression, interning free-variable sets, call plans, and
        constant values once so the step handlers only do lookups.
        """
        if store is None:
            store = Store()
        if global_env is None:
            names = None
            if trim_globals:
                names = set(free_vars(program))
                if argument is not None:
                    names |= free_vars(argument)
            global_env = make_initial_environment(store, names)
        expr = Call((program, argument)) if argument is not None else program
        annotate(expr)
        self.policy.reset()
        return State(expr, False, global_env, Halt(), store)

    # ------------------------------------------------------------------
    # The transition function
    # ------------------------------------------------------------------

    def step(self, state: State) -> Configuration:
        """One transition of Figure 5 (plus variant rules)."""
        control = state.control
        if state.is_value:
            kont = state.kont
            handler = _VALUE_DISPATCH.get(kont.__class__)
            if handler is None:
                handler = _resolve_value_handler(kont)
            return handler(self, state, control, kont)
        handler = _EXPR_DISPATCH.get(control.__class__)
        if handler is None:
            handler = _resolve_expr_handler(control)
        return handler(self, state, control)

    def _step_expr(self, state: State) -> Configuration:
        expr = state.control
        handler = _EXPR_DISPATCH.get(expr.__class__)
        if handler is None:
            handler = _resolve_expr_handler(expr)
        return handler(self, state, expr)

    def _step_value(self, state: State) -> Configuration:
        kont = state.kont
        handler = _VALUE_DISPATCH.get(kont.__class__)
        if handler is None:
            handler = _resolve_value_handler(kont)
        return handler(self, state, state.control, kont)

    # ------------------------------------------------------------------
    # The fused run loop
    # ------------------------------------------------------------------

    def run_steps(self, state: State, limit: int):
        """Execute up to *limit* transitions of :meth:`step` in one
        Python frame; return ``(configuration, steps_taken)``.

        The registers (control, value flag, environment, continuation)
        live in local variables, so intermediate :class:`State` objects
        are never constructed — one is materialized only when the batch
        is exhausted, the computation halts, or a rare rule (an escape,
        a control primop, a variant-overridden application, an error
        path) delegates to :meth:`step`.  Every transition taken, every
        store effect, and the step count are *identical* to ``limit``
        consecutive ``step`` calls — this is batching, not a different
        semantics — which the differential suite checks by holding the
        fused driver equal to the preserved seed stepper run-for-run.

        Drivers that must observe every configuration (the space meter,
        the lockstep tests) call :meth:`step` directly instead.
        """
        if self.trace is not None:
            return self._traced_run_steps(state, limit)
        control = state.control
        is_value = state.is_value
        env = state.env
        kont = state.kont
        store = state.store
        if limit <= 0:
            return state, 0
        # Hot globals and flags as locals (CPython: LOAD_FAST).
        permutation = self.policy.permutation
        cells_get = store._cells.get
        d_closure = self._default_closure_env
        d_select = self._default_select_env
        d_assign = self._default_assign_env
        d_call = self._default_call_env
        d_push = self._default_push_env
        d_frame = self._default_call_frame
        d_apply = self._default_apply
        call_fv = self._call_env_fv
        call_drop = self._call_env_drop
        push_fv = self._push_env_fv
        push_drop = self._push_env_drop
        fuse = self._fusable
        steps = 0
        while steps < limit:
            steps += 1
            if is_value:
                kcls = kont.__class__
                if kcls is Push:
                    pending = kont.pending
                    if pending:
                        plan = kont.plan
                        done = kont.done
                        if (
                            fuse
                            and plan is not None
                            and plan.suffixes[len(done)] is pending
                        ):
                            # Fuse the advance with the run of simple
                            # subexpressions that follows it.
                            vals = list(done)
                            vals.append(control)
                            control, is_value, env, kont, steps = _fuse_call(
                                self, store, plan, vals, len(vals),
                                kont.env, kont.parent, steps, limit,
                            )
                            continue
                        done = done + (control,)
                        planned = (
                            plan is not None
                            and plan.suffixes[len(done) - 1] is pending
                        )
                        rest = (
                            plan.suffixes[len(done)] if planned
                            else pending[1:]
                        )
                        if d_push:
                            saved = kont.env
                        elif push_fv and planned:
                            saved = kont.env.restrict(
                                plan.suffix_fvs[len(done)]
                            )
                        elif push_drop:
                            saved = kont.env if rest else EMPTY_ENV
                        else:
                            saved = self.push_env(kont.env, rest)
                        control = pending[0]
                        is_value = False
                        env = kont.env
                        kont = Push(
                            rest, done, kont.order, saved, kont.parent,
                            site=kont.site, plan=plan,
                        )
                        continue
                    values_in_order = kont.done + (control,)
                    plan = kont.plan
                    if plan is not None and plan.is_identity:
                        control = values_in_order[0]
                        args = values_in_order[1:]
                    else:
                        original: list = [None] * len(values_in_order)
                        for position, evaluated in zip(
                            kont.order, values_in_order
                        ):
                            original[position] = evaluated
                        control = original[0]
                        args = tuple(original[1:])
                    env = kont.env
                    kont = CallK(args, kont.parent, site=kont.site)
                    continue
                if kcls is CallK:
                    args = kont.args
                    parent = kont.parent
                    if d_apply:
                        ocls = control.__class__
                        if ocls is Closure:
                            lam = control.lam
                            params = lam.params
                            if len(params) != len(args):
                                raise ArityError(
                                    f"procedure expects {len(params)} "
                                    f"arguments, got {len(args)}"
                                )
                            locations = store.alloc_many(args)
                            body_env = control.env.extend(params, locations)
                            if not d_frame:
                                parent = self.call_frame(
                                    locations, env, parent
                                )
                            control = lam.body
                            is_value = False
                            env = body_env
                            kont = parent
                            continue
                        if ocls is Primop and not control.controls:
                            arity = control.arity
                            if arity is not None:
                                low, high = arity
                                if len(args) < low or (
                                    high is not None and len(args) > high
                                ):
                                    raise ArityError(
                                        f"{control.name} expects "
                                        f"{_arity_text(low, high)} arguments, "
                                        f"got {len(args)}"
                                    )
                            control = control.proc(self, store, args)
                            kont = parent
                            continue
                    # Escapes, control primops, overridden application
                    # (Bigloo), and the not-a-procedure error: take the
                    # exact step-path.
                    configuration = self.apply_procedure(
                        State(control, True, env, kont, store),
                        control,
                        args,
                        parent,
                    )
                    control = configuration.control
                    is_value = configuration.is_value
                    env = configuration.env
                    kont = configuration.kont
                    continue
                if kcls is Select:
                    control = (
                        kont.consequent if is_true(control)
                        else kont.alternative
                    )
                    is_value = False
                    env = kont.env
                    kont = kont.parent
                    continue
                if kcls is Return:
                    env = kont.env
                    kont = kont.parent
                    continue
                if kcls is Halt:
                    return Final(control, store), steps
                if kcls is Assign:
                    location = kont.env.lookup(kont.name)
                    if location is None or location not in store:
                        raise UnboundVariableError(
                            f"assignment to unbound variable: {kont.name}"
                        )
                    store.write(location, control)
                    control = UNSPECIFIED
                    env = kont.env
                    kont = kont.parent
                    continue
                # ReturnStack, TaggedReturn, unknown: the exact step-path.
                configuration = self._step_value(
                    State(control, True, env, kont, store)
                )
                if configuration.is_final:
                    return configuration, steps
                control = configuration.control
                is_value = configuration.is_value
                env = configuration.env
                kont = configuration.kont
                continue
            cls = control.__class__
            if cls is Var:
                name = control.name
                location = env._bindings.get(name)
                if location is None:
                    raise UnboundVariableError(f"unbound variable: {name}")
                value = cells_get(location)
                if value is None:
                    raise UnboundVariableError(
                        f"variable {name} refers to an unmapped location"
                    )
                if value is UNDEFINED:
                    raise UnboundVariableError(
                        f"variable {name} read before initialization"
                    )
                control = value
                is_value = True
                continue
            if cls is Call:
                order = permutation(len(control.exprs))
                plan = call_plan(control, order)
                if fuse:
                    control, is_value, env, kont, steps = _fuse_call(
                        self, store, plan, [], 0, env, kont, steps, limit,
                    )
                    continue
                pending = plan.pending
                if d_call:
                    saved = env
                elif call_fv:
                    saved = env.restrict(plan.suffix_fvs[0])
                elif call_drop:
                    saved = env if pending else EMPTY_ENV
                else:
                    saved = self.call_env(env, pending)
                kont = Push(
                    pending, (), plan.order, saved, kont,
                    site=control, plan=plan,
                )
                control = plan.first
                continue
            if cls is Quote:
                control = quote_value(control)
                is_value = True
                continue
            if cls is If:
                saved = (
                    env if d_select
                    else self.select_env(
                        env, control.consequent, control.alternative
                    )
                )
                kont = Select(
                    control.consequent, control.alternative, saved, kont
                )
                control = control.test
                continue
            if cls is Lambda:
                closed = env if d_closure else self.closure_env(control, env)
                tag = store.alloc(UNSPECIFIED)
                control = Closure(tag, control, closed)
                is_value = True
                continue
            if cls is SetBang:
                saved = env if d_assign else self.assign_env(env, control.name)
                kont = Assign(control.name, saved, kont)
                control = control.expr
                continue
            # Unknown expression class: the exact step-path (MRO
            # fallback or the seed's StuckError).
            configuration = self._step_expr(
                State(control, False, env, kont, store)
            )
            control = configuration.control
            is_value = configuration.is_value
            env = configuration.env
            kont = configuration.kont
        return State(control, is_value, env, kont, store), steps

    def _traced_run_steps(self, state: State, limit: int):
        """The run driver used while a trace bus is attached: every
        transition goes through :meth:`step` (the exact per-step path)
        and is published before it is taken.  Fusion is pure batching,
        so bypassing it here changes no transition — it only makes each
        one observable."""
        bus = self.trace
        step = self.step
        steps = 0
        while steps < limit:
            bus.emit_step_state(state)
            configuration = step(state)
            steps += 1
            if configuration.is_final:
                return configuration, steps
            state = configuration
        return state, steps

    # ------------------------------------------------------------------
    # Procedure application
    # ------------------------------------------------------------------

    def apply_procedure(
        self, state: State, operator: Value, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        """The call continuation rule, dispatched on the operator."""
        if isinstance(operator, Closure):
            return self._apply_closure(state, operator, args, kont)
        if isinstance(operator, Primop):
            return self._apply_primop(state, operator, args, kont)
        if isinstance(operator, Escape):
            if len(args) != 1:
                raise ArityError(
                    f"escape procedure expects 1 argument, got {len(args)}"
                )
            return State(args[0], True, EMPTY_ENV, operator.kont, state.store)
        raise NotAProcedureError(f"not a procedure: {operator!r}")

    def _apply_closure(
        self, state: State, closure: Closure, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        lam = closure.lam
        params = lam.params
        if len(params) != len(args):
            raise ArityError(
                f"procedure expects {len(params)} arguments, got {len(args)}"
            )
        locations = state.store.alloc_many(args)
        body_env = closure.env.extend(params, locations)
        if self._default_call_frame:
            body_kont = kont
        else:
            body_kont = self.call_frame(locations, state.env, kont)
        return State(lam.body, False, body_env, body_kont, state.store)

    def _apply_primop(
        self, state: State, primop: Primop, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        if primop.arity is not None:
            low, high = primop.arity
            if len(args) < low or (high is not None and len(args) > high):
                raise ArityError(
                    f"{primop.name} expects {_arity_text(low, high)} arguments, "
                    f"got {len(args)}"
                )
        if primop.controls:
            return primop.proc(self, state, args, kont)
        result = primop.proc(self, state.store, args)
        return State(result, True, state.env, kont, state.store)

    # ------------------------------------------------------------------
    # Variant hooks (I_tail defaults)
    # ------------------------------------------------------------------

    def closure_env(self, lam: Lambda, env: Environment) -> Environment:
        """Environment captured by a closure (I_tail: all of scope)."""
        return env

    def select_env(self, env: Environment, consequent: Expr, alternative: Expr):
        """Environment saved in a select continuation."""
        return env

    def assign_env(self, env: Environment, name: str) -> Environment:
        """Environment saved in an assign continuation."""
        return env

    def call_env(self, env: Environment, pending: Tuple[Expr, ...]) -> Environment:
        """Environment saved in the push continuation at call reduction."""
        return env

    def push_env(self, env: Environment, rest: Tuple[Expr, ...]) -> Environment:
        """Environment saved when the push continuation advances."""
        return env

    def call_frame(
        self,
        frame_locations: Tuple[Location, ...],
        caller_env: Environment,
        kont: Kont,
    ) -> Kont:
        """Continuation for a closure body (I_tail: the caller's kappa
        unchanged — every call is a goto)."""
        return kont

    def compact(self, state: State) -> State:
        """Optional continuation compaction, run by the meter alongside
        the GC rule.  The base machines do nothing; Baker's MTA variant
        collapses runs of return frames here."""
        return state

    # ------------------------------------------------------------------
    # I_stack frame deletion (used only by variants with ReturnStack)
    # ------------------------------------------------------------------

    def _delete_frame(self, state: State, value: Value, kont: ReturnStack) -> None:
        """Delete the largest subset of the frame that creates no
        dangling pointer: frame locations unreachable from the
        post-return configuration."""
        store = state.store
        candidates = [loc for loc in kont.frame if loc in store]
        if not candidates:
            return
        live = reachable_locations(store, (value,), kont.env, kont.parent)
        deletable = [loc for loc in candidates if loc not in live]
        if deletable:
            store.delete_many(deletable)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} policy={self.policy!r}>"


# ---------------------------------------------------------------------------
# Expression handlers (the left column of Figure 5), one per class.
# ---------------------------------------------------------------------------


def _expr_quote(machine: Machine, state: State, expr: Quote) -> State:
    return State(quote_value(expr), True, state.env, state.kont, state.store)


def _expr_var(machine: Machine, state: State, expr: Var) -> State:
    env = state.env
    location = env.lookup(expr.name)
    if location is None:
        raise UnboundVariableError(f"unbound variable: {expr.name}")
    value = state.store.get(location)
    if value is None:
        raise UnboundVariableError(
            f"variable {expr.name} refers to an unmapped location"
        )
    if value is UNDEFINED:
        raise UnboundVariableError(
            f"variable {expr.name} read before initialization"
        )
    return State(value, True, env, state.kont, state.store)


def _expr_lambda(machine: Machine, state: State, expr: Lambda) -> State:
    env = state.env
    if machine._default_closure_env:
        closed = env
    else:
        closed = machine.closure_env(expr, env)
    tag = state.store.alloc(UNSPECIFIED)
    return State(Closure(tag, expr, closed), True, env, state.kont, state.store)


def _expr_if(machine: Machine, state: State, expr: If) -> State:
    env = state.env
    if machine._default_select_env:
        saved = env
    else:
        saved = machine.select_env(env, expr.consequent, expr.alternative)
    kont = Select(expr.consequent, expr.alternative, saved, state.kont)
    return State(expr.test, False, env, kont, state.store)


def _expr_set(machine: Machine, state: State, expr: SetBang) -> State:
    env = state.env
    if machine._default_assign_env:
        saved = env
    else:
        saved = machine.assign_env(env, expr.name)
    kont = Assign(expr.name, saved, state.kont)
    return State(expr.expr, False, env, kont, state.store)


def _expr_call(machine: Machine, state: State, expr: Call) -> State:
    order = machine.policy.permutation(len(expr.exprs))
    plan = call_plan(expr, order)  # validates the permutation once
    env = state.env
    pending = plan.pending
    if machine._default_call_env:
        saved = env
    else:
        saved = machine.call_env(env, pending)
    kont = Push(pending, (), plan.order, saved, state.kont, site=expr, plan=plan)
    return State(plan.first, False, env, kont, state.store)


_EXPR_DISPATCH = {
    Quote: _expr_quote,
    Var: _expr_var,
    Lambda: _expr_lambda,
    If: _expr_if,
    SetBang: _expr_set,
    Call: _expr_call,
}


def _resolve_expr_handler(expr):
    """MRO fallback for Expr subclasses, cached; stuck otherwise."""
    for base in expr.__class__.__mro__[1:]:
        handler = _EXPR_DISPATCH.get(base)
        if handler is not None:
            _EXPR_DISPATCH[expr.__class__] = handler
            return handler
    raise StuckError(f"not a Core Scheme expression: {expr!r}")


# ---------------------------------------------------------------------------
# Value handlers (the right column of Figure 5), one per continuation.
# ---------------------------------------------------------------------------


def _value_halt(machine: Machine, state: State, value, kont: Halt):
    return Final(value, state.store)


def _value_select(machine: Machine, state: State, value, kont: Select) -> State:
    branch = kont.consequent if is_true(value) else kont.alternative
    return State(branch, False, kont.env, kont.parent, state.store)


def _value_assign(machine: Machine, state: State, value, kont: Assign) -> State:
    location = kont.env.lookup(kont.name)
    if location is None or location not in state.store:
        raise UnboundVariableError(
            f"assignment to unbound variable: {kont.name}"
        )
    state.store.write(location, value)
    return State(UNSPECIFIED, True, kont.env, kont.parent, state.store)


def _value_push(machine: Machine, state: State, value, kont: Push):
    pending = kont.pending
    if pending:
        plan = kont.plan
        done = kont.done
        if plan is not None and plan.suffixes[len(done)] is pending:
            rest = plan.suffixes[len(done) + 1]
        else:  # hand-built frame: fall back to slicing
            rest = pending[1:]
        if machine._default_push_env:
            saved = kont.env
        else:
            saved = machine.push_env(kont.env, rest)
        new_kont = Push(
            rest, done + (value,), kont.order, saved, kont.parent,
            site=kont.site, plan=plan,
        )
        return State(pending[0], False, kont.env, new_kont, state.store)
    # All subexpressions evaluated: unpermute and form the call.
    values_in_order = kont.done + (value,)
    plan = kont.plan
    if plan is not None and plan.is_identity:
        operator = values_in_order[0]
        args = values_in_order[1:]
    else:
        original: list = [None] * len(values_in_order)
        for position, evaluated in zip(kont.order, values_in_order):
            original[position] = evaluated
        operator = original[0]
        args = tuple(original[1:])
    return State(
        operator, True, kont.env,
        CallK(args, kont.parent, site=kont.site), state.store,
    )


def _value_call(machine: Machine, state: State, value, kont: CallK):
    return machine.apply_procedure(state, value, kont.args, kont.parent)


def _value_return(machine: Machine, state: State, value, kont: Return) -> State:
    return State(value, True, kont.env, kont.parent, state.store)


def _value_return_stack(
    machine: Machine, state: State, value, kont: ReturnStack
) -> State:
    machine._delete_frame(state, value, kont)
    return State(value, True, kont.env, kont.parent, state.store)


_VALUE_DISPATCH = {
    Halt: _value_halt,
    Select: _value_select,
    Assign: _value_assign,
    Push: _value_push,
    CallK: _value_call,
    Return: _value_return,
    ReturnStack: _value_return_stack,
}


def _resolve_value_handler(kont):
    """MRO fallback for Kont subclasses (e.g. the Bigloo TaggedReturn),
    cached under the concrete class; stuck otherwise."""
    for base in kont.__class__.__mro__[1:]:
        handler = _VALUE_DISPATCH.get(base)
        if handler is not None:
            _VALUE_DISPATCH[kont.__class__] = handler
            return handler
    raise StuckError(f"unknown continuation: {kont!r}")


def constant_value(constant) -> Value:
    """Map a quoted constant datum to a runtime value."""
    if isinstance(constant, bool):
        return TRUE if constant else FALSE
    if isinstance(constant, int):
        return Num(constant)
    if isinstance(constant, Symbol):
        return Sym(constant.name)
    if isinstance(constant, CharDatum):
        return CharValue(constant.value)
    if isinstance(constant, str):
        return Str(constant)
    if constant == ():
        return NIL
    raise StuckError(f"not an atomic constant: {constant!r}")


def _arity_text(low: int, high: Optional[int]) -> str:
    if high is None:
        return f"at least {low}"
    if low == high:
        return str(low)
    return f"{low} to {high}"


# The prepass imports constant_value from this module (lazily, for the
# quote-value cache); importing it here at the bottom keeps a single
# import-time ordering for both directions of the knot.
from ..compiler.prepass import annotate, call_plan, quote_value  # noqa: E402
