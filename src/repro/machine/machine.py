"""The CEKS reference machine (Figure 5) with variant hooks.

:class:`Machine` implements the properly tail recursive semantics
I_tail exactly; the other reference implementations of sections 8-10
are subclasses (:mod:`repro.machine.variants`) that override precisely
the hooks corresponding to the rules the paper changes:

========================  =====================================================
hook                      paper rule it parameterizes
========================  =====================================================
``closure_env``           the lambda reduction rule (I_free, I_sfs close over
                          free variables only)
``select_env``            the if reduction rule (I_sfs restricts)
``assign_env``            the set! reduction rule (I_sfs restricts)
``call_env``              the procedure-call reduction rule (I_sfs restricts
                          to the free variables of the pending expressions)
``push_env``              the push continuation rule (I_evlis drops the
                          environment before the last subexpression; I_sfs
                          restricts to the free variables of the rest)
``call_frame``            the closure-call continuation rule (I_gc creates
                          return:(rho, kappa); I_stack creates
                          return:(A, rho, kappa))
========================  =====================================================

The transition function is *compiled once*: :meth:`Machine.inject`
runs the static pre-pass (:mod:`repro.compiler.prepass`), and stepping
dispatches through class-keyed tables — one handler per expression
class and per continuation class — instead of isinstance ladders.
Handlers read interned :class:`~repro.compiler.prepass.CallPlan`
suffixes rather than slicing tuples, and machines that keep a hook at
its I_tail default (identity) skip the hook call entirely.  None of
this changes a single transition: the preserved seed stepper
(:mod:`repro.machine.reference_step`) is held equal to this one —
answers, step counts, Definition 21/23 space — by the lockstep
differential suite.

The second generation of the fused run loop (``gen2=True``, the
default) adds the telemetry-guided superinstructions of DESIGN.md §7:
quickened variable reads (a prepass lexical address checked against
the runtime frame chain, falling back to named lookup whenever the
chain was restricted or the name is ``set!``-mutable), inlined
all-simple nested calls (the ``Push -> eval-operand -> CallK`` cycle
of a ``(prim v ...)`` operand collapsed into one batched transition),
and fused ``If`` tests (the transient select frame never built).  All
of it is still pure batching: every skipped continuation is transient
— created and consumed strictly inside one ``run_steps`` batch — so
step counts, store effects, answers, and the Figure 7/8 space of every
configuration a driver can observe are unchanged.  ``gen2=False``
reproduces the first-generation loop exactly (the benchmark baseline).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..syntax.ast import Call, Expr, If, Lambda, Quote, SetBang, Var
from ..syntax.free_vars import branch_free_vars, free_vars
from .config import Configuration, Final, State
from .continuation import (
    Assign,
    CallK,
    Halt,
    Kont,
    Push,
    Return,
    ReturnStack,
    Select,
)
from .environment import EMPTY_ENV, Environment
from .errors import (
    ArityError,
    NotAProcedureError,
    StuckError,
    UnboundVariableError,
)
from .gc import reachable_locations
from .policy import LeftToRight, Policy
from .primitives import make_initial_environment
from .store import Store
from .values import (
    Char as CharValue,
    Closure,
    Escape,
    FALSE,
    Location,
    NIL,
    Num,
    Primop,
    Str,
    Sym,
    TRUE,
    UNDEFINED,
    UNSPECIFIED,
    Value,
    is_true,
)
from ..reader.datum import Char as CharDatum, Symbol

# Imported late in the module (after constant_value is defined) to
# close the machine <-> prepass knot; see the bottom of this file.
annotate = None
call_plan = None
quote_value = None
if_test_plan = None
body_fuse_plan = None
gen3_code = None
register_program = None
_VAR_ADDRS: dict = {}
_IF_TESTS: dict = {}
_IDENTITY_PLANS: dict = {}

#: (id(program), id(argument)) -> the injection wrapper ``(P D)``.
#: Re-injecting the same prepared program reuses the same Call node, so
#: the prepass annotation and the gen-3 call-graph classification run
#: once per program instead of once per run (the cached Call holds the
#: operands alive, so the ids cannot be recycled under the entry).
_INJECT_WRAPPERS: dict = {}


def _hook_kind(cls, hook_name: str, kind_name: str) -> str:
    """The declared kind of a variant hook, trusted only when the class
    that defines the hook also declares the kind (see
    ``Machine.call_env_kind``)."""
    for klass in cls.__mro__:
        if hook_name in klass.__dict__:
            if klass is Machine:
                return "identity"
            return klass.__dict__.get(kind_name, "custom")
    return "identity"


def _saved_env(machine, base, plan, j):
    """The environment saved in the *j*-th push frame of *plan*, rebuilt
    directly from *base* (the environment the call reduced in, or the
    frame environment fusion started from).

    Content-identical to the seed's chained hooks: the suffix
    free-variable sets shrink monotonically, so
    ``restrict(restrict(e, A), B) == restrict(e, B)`` whenever
    ``B <= A`` — restricting *base* once equals restricting each
    intermediate saved environment in turn.  Only called for machines
    whose hook kinds are declared (``Machine._fusable``).
    """
    if j == 0:
        if machine._default_call_env:
            return base
        if machine._call_env_fv:
            fvs = plan.suffix_fvs[0]
            return base.restrict(fvs) if fvs else EMPTY_ENV
        return base if plan.pending else EMPTY_ENV  # drop-empty
    if machine._default_push_env:
        return base
    if machine._push_env_fv:
        fvs = plan.suffix_fvs[j]
        return base.restrict(fvs) if fvs else EMPTY_ENV
    return base if plan.suffixes[j] else EMPTY_ENV  # drop-empty


#: Sentinel returned by :func:`_nested_value` when the speculated
#: operator turns out not to be a non-control primop: everything
#: evaluated up to that point was pure (Var reads and Quote constants),
#: so the generic path replays the nested call exactly.
_NO_FUSE = object()

#: Sentinel for the machine-*dependent* decline: the operator is a
#: closure, which only beta-capable machines can fuse.  Recorded as
#: ``CallPlan.beta_only`` rather than clearing ``speculate`` — plans
#: are interned per site and shared across machines, so a decline that
#: another machine would have accepted must not poison the plan.
_BETA_ONLY = object()


def _quick_location(env, slot, path):
    """The location of a quickened variable, read off the runtime frame
    chain, or None when the chain does not match the static *path* (a
    restricted, hand-built, or global frame) — the caller then falls
    back to named lookup.

    *path* is the tuple of enclosing lambdas' parameter tuples from the
    innermost out to the binding lambda; a frame matches a level only
    when its recorded parameter tuple is the *same object* (lambda
    nodes own their params tuple), which makes a match a proof that the
    frame is that lambda's body frame — and then ``_frame_locs[slot]``
    is by construction the location its ``extend`` bound the name to.
    """
    frame = env
    last = len(path) - 1
    for level, params in enumerate(path):
        if frame is None or frame._frame_names is not params:
            return None
        if level == last:
            return frame._frame_locs[slot]
        frame = frame._parent
    return None


def _nested_value(machine, store, plan, env, bindings, cells_get, budget):
    """Evaluate an all-simple nested call (``CallPlan.simple_all``) to
    its value without materializing any of its frames.

    Returns ``(value, cost, held)`` on success, where *cost* is the
    number of seed transitions consumed and *held* is either None (the
    batch-boundary environment is the nested call's own last saved
    environment) or a ``(body_env, body_plan)`` pair (a fused closure
    body ran last — its last saved environment holds the value); or
    None when the transitions would overflow *budget* (the caller then
    takes the generic path without giving up on the site); or
    :data:`_NO_FUSE` when the operator is not fusable — the caller
    records that on the plan so the site is not re-speculated.

    Two operator shapes fuse.  A **non-control primop** costs
    ``plan.fuse_cost``.  A **closure whose body is itself an all-simple
    call of a primop** (the accessor/predicate shape — the beta
    superinstruction) costs both calls' fuse_cost plus the return-frame
    pop on machines whose ``call_frame`` is the declared I_gc Return.

    Exactness: every subexpression is a Var or Quote, so nothing before
    the application step touches the store — the speculation (operator
    reads, the closure-body operator resolved through the argument list
    or the closure environment, never the frame) has no effects to
    undo, and errors raise at the same logical transition as the
    seed's; a speculative read that would fail just declines, and the
    generic replay raises at the exact seed point.  Only invoked under
    the stateless left-to-right policy (the seed would consult the
    policy at the skipped call reductions).
    """
    kinds = plan.kinds
    addrs = plan.addrs
    consts = plan.consts
    exprs = plan.in_order
    op = None
    vals = []
    for i in range(len(exprs)):
        if kinds[i] == 1:  # Var
            expr = exprs[i]
            addr = addrs[i]
            location = None
            if addr is not None:
                if env._frame_names is addr[2]:
                    location = env._frame_locs[addr[0]]
                else:
                    location = _quick_location(env, addr[0], addr[1])
            if location is None:
                location = bindings.get(expr.name)
                if location is None:
                    raise UnboundVariableError(
                        f"unbound variable: {expr.name}"
                    )
            value = cells_get(location)
            if value is None:
                raise UnboundVariableError(
                    f"variable {expr.name} refers to an unmapped location"
                )
            if value is UNDEFINED:
                raise UnboundVariableError(
                    f"variable {expr.name} read before initialization"
                )
        else:  # Quote
            value = consts[i]
            if value is None:
                value = quote_value(exprs[i])
        if i == 0:
            op = value
        else:
            vals.append(value)
    args = tuple(vals)
    ocls = op.__class__
    if ocls is Primop:
        if op.controls:
            return _NO_FUSE
        cost = plan.fuse_cost
        if cost > budget:
            return None
        arity = op.arity
        if arity is not None:
            low, high = arity
            if len(args) < low or (high is not None and len(args) > high):
                raise ArityError(
                    f"{op.name} expects {_arity_text(low, high)} arguments, "
                    f"got {len(args)}"
                )
        return op.proc(machine, store, args), cost, None
    if ocls is Closure:
        return _nested_beta(machine, store, plan, op, args, cells_get, budget)
    return _NO_FUSE


def _beta_spec(plan, lam):
    """The static shape of a beta superinstruction at (*plan*, *lam*):
    ``(params, body_plan, bmode, bx, folds, pair_cost)``, or None when
    the pair does not fuse (wrong arity, non-call body, quoted or
    shadow-prone operator).  Everything here depends only on the site
    and the lambda, so the result is cached on the plan (monomorphic —
    sites keep their operator) and shared across machines.

    *bmode*/*bx* resolve the body operator per application: 0 reads
    argument ``bx``, 1 probes the closure environment for name ``bx``.
    *folds* resolve the body arguments: tag 0 reads an argument by
    index, tag 1 is an interned constant, tag 2 probes the body
    environment for ``(name, unbound-msg, unmapped-msg, undef-msg)``,
    tag 3 re-quotes a Str node (fresh per evaluation, like the seed).
    A parameter read folds to the argument itself because the fold runs
    *after* the commit point: the location was just allocated with that
    exact value, so the load can neither miss nor see UNDEFINED."""
    params = lam.params
    if (len(params) != len(plan.in_order) - 1
            or len(set(params)) != len(params)):
        return None  # the generic replay raises any ArityError
    body = body_fuse_plan(lam)
    if body is None or body.kinds[0] != 1:
        return None
    bname = body.first.name
    if bname in params:
        bmode, bx = 0, params.index(bname)
    else:
        bmode, bx = 1, bname
    folds = []
    bkinds = body.kinds
    bconsts = body.consts
    bexprs = body.in_order
    for j in range(1, len(bexprs)):
        if bkinds[j] == 1:
            name = bexprs[j].name
            if name in params:
                folds.append((0, params.index(name)))
            else:
                folds.append((2, (
                    name,
                    f"unbound variable: {name}",
                    f"variable {name} refers to an unmapped location",
                    f"variable {name} read before initialization",
                )))
        elif bconsts[j] is not None:
            folds.append((1, bconsts[j]))
        else:
            folds.append((3, bexprs[j]))
    return (params, body, bmode, bx, tuple(folds),
            plan.fuse_cost + body.fuse_cost)


def _nested_beta(machine, store, plan, op, args, cells_get, budget):
    """The closure arm of :func:`_nested_value`, entered with the
    operands already evaluated — generated code calls this directly
    after its inlined operand loads (same checks, same order).  The
    static shape comes from the plan's :func:`_beta_spec` cache, and
    the application itself runs in a per-(spec, machine class)
    generated applier (``pycodegen.build_beta_fn``): the fold map
    unrolled, the cost baked, the held decision folded.  Only the
    operator value, the budget check, and the store commit are
    per-call work."""
    if not machine._fuse_beta:
        return _BETA_ONLY
    lam = op.lam
    cache = plan.beta_cache
    if cache is None or cache[0] is not lam:
        spec = _beta_spec(plan, lam)
        cache = (lam, spec, {} if spec is not None else None)
        plan.beta_cache = cache
    spec = cache[1]
    if spec is None:
        return _NO_FUSE
    fns = cache[2]
    cls = machine.__class__
    fn = fns.get(cls)
    if fn is None:
        fn = build_beta_fn(plan, lam, spec, machine)
        fns[cls] = fn
    return fn(machine, store, op, args, cells_get, budget)


def _fuse_call(machine, store, plan, vals, i, base, parent, steps, limit):
    """Inline-evaluate the run of *simple* subexpressions of a call
    starting at evaluation index *i*, without materializing the
    intermediate push frames the per-step rules would thread through.

    Simple expressions (Var, Quote, Lambda — see ``CallPlan.kinds``)
    complete in one transition that inspects neither the continuation
    nor (beyond a lookup) the environment, so the eval and advance
    steps can be counted without being individually materialized; the
    store effects (the lambda rule's tag allocation) happen in exactly
    the seed order.  Under gen-2, a kind-4 operand — an all-simple
    nested call — is additionally evaluated whole through
    :func:`_nested_value` (``fuse_cost`` transitions, committed only
    when they fit the budget and the speculated operator is a
    non-control primop), and quickened Var operands read their lexical
    address off the frame chain.  Returns the registers
    ``(control, is_value, env, kont, steps)`` at the first point the
    generic loop must resume: a compound subexpression (its push frame
    is then built, content-identical to the seed's), the step budget
    running out, or the completed call (unpermuted, with its call
    continuation, ready for the application step).
    """
    kinds = plan.kinds
    addrs = plan.addrs
    consts = plan.consts
    nested = plan.nested
    pending = plan.pending
    last = len(pending)
    start = i
    fuse_lambda = machine._fuse_lambda
    fuse_nested = machine._fuse_nested
    fuse_beta = machine._fuse_beta
    d_env = machine._default_call_env and machine._default_push_env
    frame_return = machine._frame_return
    quicken = machine._gen2
    closure_fv = machine._closure_env_fv
    bindings = base._bindings
    cells_get = store._cells.get
    while True:
        expr = plan.first if i == 0 else pending[i - 1]
        kind = kinds[i]
        value = _NO_FUSE
        cost = 1
        if steps < limit:
            if kind == 1:  # Var
                name = expr.name
                location = None
                if quicken:
                    addr = addrs[i]
                    if addr is not None:
                        if base._frame_names is addr[2]:
                            location = base._frame_locs[addr[0]]
                        else:
                            location = _quick_location(
                                base, addr[0], addr[1]
                            )
                if location is None:
                    location = bindings.get(name)
                    if location is None:
                        raise UnboundVariableError(
                            f"unbound variable: {name}"
                        )
                value = cells_get(location)
                if value is None:
                    raise UnboundVariableError(
                        f"variable {name} refers to an unmapped location"
                    )
                if value is UNDEFINED:
                    raise UnboundVariableError(
                        f"variable {name} read before initialization"
                    )
            elif kind == 2:  # Quote
                value = consts[i]
                if value is None:  # a string constant: stay fresh
                    value = quote_value(expr)
            elif kind == 3:  # Lambda
                if fuse_lambda:
                    closed = (
                        base.restrict(free_vars(expr)) if closure_fv else base
                    )
                    value = Closure(store.alloc(UNSPECIFIED), expr, closed)
            elif kind == 4:  # all-simple nested call
                inner = nested[i]
                held_src = None
                if (
                    fuse_nested
                    and inner.speculate
                    and (fuse_beta or not inner.beta_only)
                ):
                    fused = _nested_value(
                        machine, store, inner, base, bindings, cells_get,
                        limit - steps,
                    )
                    if fused is _NO_FUSE:
                        inner.speculate = False
                    elif fused is _BETA_ONLY:
                        inner.beta_only = True
                    elif fused is not None:
                        value, cost, held_src = fused
        if value is _NO_FUSE:
            # Hand the expression to the generic loop (compound, an
            # unfusable lambda or nested call, or the batch boundary):
            # materialize the configuration the per-step rules would
            # be in.
            return (
                expr,
                False,
                base if d_env or i == start
                else _saved_env(machine, base, plan, i - 1),
                Push(
                    plan.suffixes[i], tuple(vals), plan.order,
                    base if d_env else _saved_env(machine, base, plan, i),
                    parent, plan.site, plan,
                ),
                steps,
            )
        steps += cost
        vals.append(value)
        if steps >= limit:
            # Batch boundary holding the value at frame i.  The seed's
            # environment register there is the one the value was
            # produced in: the frame's saved environment for a simple
            # operand, the *inner* call's last saved environment for a
            # fused nested call (its apply step ran last).
            if kind == 4:
                # A fused closure body (beta) that ran to its own apply
                # step holds that body call's last saved environment;
                # otherwise (primop inner, or the gc-family beta whose
                # final transition is the Return pop restoring the
                # caller environment) the inner call's.
                if held_src is not None:
                    held = (
                        held_src[0] if d_env else _saved_env(
                            machine, held_src[0], held_src[1],
                            len(held_src[1].pending),
                        )
                    )
                else:
                    held = (
                        base if d_env else
                        _saved_env(machine, base, inner, len(inner.pending))
                    )
            elif d_env or i == start:
                held = base
            else:
                held = _saved_env(machine, base, plan, i - 1)
            return (
                value,
                True,
                held,
                Push(
                    plan.suffixes[i], tuple(vals[:-1]), plan.order,
                    base if d_env else _saved_env(machine, base, plan, i),
                    parent, plan.site, plan,
                ),
                steps,
            )
        steps += 1  # the advance step (i < last) or the complete step
        if i < last:
            i += 1
            continue
        # Complete: unpermute and form the call.
        if plan.is_identity:
            operator = vals[0]
            args = tuple(vals[1:])
        else:
            original = [None] * len(vals)
            for position, evaluated in zip(plan.order, vals):
                original[position] = evaluated
            operator = original[0]
            args = tuple(original[1:])
        if steps < limit:
            # Fuse the application step too for the common operators,
            # mirroring the generic loop's call-continuation rule (a
            # closure-only apply override still admits the primop case).
            ocls = operator.__class__
            if ocls is Closure and machine._default_apply:
                lam = operator.lam
                params = lam.params
                if len(params) != len(args):
                    raise ArityError(
                        f"procedure expects {len(params)} arguments, "
                        f"got {len(args)}"
                    )
                steps += 1  # the application step
                if len(params) == 1:
                    body_env = operator.env.extend_alloc1(
                        store, params, args[0]
                    )
                else:
                    body_env = operator.env.extend_alloc(
                        store, params, args
                    )
                entry = parent
                if not machine._default_call_frame:
                    caller = (
                        base if d_env
                        else _saved_env(machine, base, plan, last)
                    )
                    if frame_return:
                        parent = Return(caller, parent)
                    else:
                        parent = machine.call_frame(
                            body_env._frame_locs, caller, parent
                        )
                if machine._gen3:
                    code = gen3_code(lam)
                    if code is not None:
                        return _enter_code(
                            machine, store, code, args, body_env,
                            parent, entry, steps, limit,
                        )[:5]
                return (lam.body, False, body_env, parent, steps)
            if (
                ocls is Primop
                and machine._primop_apply
                and not operator.controls
            ):
                arity = operator.arity
                if arity is not None:
                    low, high = arity
                    if len(args) < low or (
                        high is not None and len(args) > high
                    ):
                        raise ArityError(
                            f"{operator.name} expects "
                            f"{_arity_text(low, high)} arguments, "
                            f"got {len(args)}"
                        )
                steps += 1  # the application step
                return (
                    operator.proc(machine, store, args),
                    True,
                    base if d_env else _saved_env(machine, base, plan, last),
                    parent,
                    steps,
                )
        # Escapes, control primops, overridden application (Bigloo),
        # errors, or the batch boundary: the call continuation is
        # materialized and the generic loop applies it.
        return (
            operator,
            True,
            base if d_env else _saved_env(machine, base, plan, last),
            CallK(args, parent, plan.site),
            steps,
        )


#: Bound on in-interpreter descent into known callees (EA_KNOWN): each
#: level is one Python frame, and a deeper recursion exits to the
#: generic loop, which re-enters the callee's code at depth 0 — the
#: Python stack stays bounded while in-language recursion is unbounded.
_VM_MAX_DEPTH = 60


def _ctx_env(machine, base, ctx):
    """The seed environment register at a compiled-code point, rebuilt
    from the frame environment *base* and the static context *ctx* —
    ``(opd, bfv)`` where *opd* is an (plan, j) operand position (the
    register is that frame's saved environment) and *bfv* an interned
    branch free-variable set (a fused select restricted to it on
    machines declaring the I_sfs branch restriction).  Compositions are
    exact by the same monotone-restriction argument as ``_saved_env``:
    each successive set is a subset of the one it composes over."""
    opd = ctx[0]
    env = base if opd is None else _saved_env(machine, base, opd[0], opd[1])
    bfv = ctx[1]
    if bfv is not None and machine._select_env_fv:
        env = env.restrict(bfv)
    return env


def _run_code(machine, store, code, args, base, kont, entry_kont,
              steps, limit, depth=0):
    """Execute compiled bytecode (:mod:`repro.compiler.bytecode`) for
    one activation whose argument frame is already committed (the apply
    transition itself was counted by the caller).

    Returns ``(control, is_value, env, kont, steps, returned)``.  With
    *returned* False the first five elements are an exact seed
    configuration at a batch boundary (or a point the generic loop must
    take over); the caller resumes the generic loop from it.  With
    *returned* True the activation ran to its return: *control* is the
    value, *env* the environment register after the final frame pop,
    *kont* is *entry_kont*, and ``steps < limit`` — an ``EA_KNOWN``
    caller continues in its own code.

    Exactness: pure batching.  Every instruction replays the seed's
    transitions — same counts, same store effects in the same order,
    same error raises — and every exit materializes the configuration
    the per-step rules would be in, with the environment register
    rebuilt via :func:`_ctx_env`/:func:`_saved_env` and the
    continuation register always the real continuation (frame
    continuations are built per the variant's declared kind at every
    application, self-tail back-edges included).
    """
    instrs = code.instrs
    d_env = machine._default_call_env and machine._default_push_env
    d_select = machine._default_select_env
    closure_fv = machine._closure_env_fv
    fuse_beta = machine._fuse_beta
    primop_apply = machine._primop_apply
    mode = machine._gen3_mode
    trc = machine.gen3_tagged
    bindings = base._bindings
    cells_get = store._cells.get
    regs = [None] * code.nregs
    regs[:len(args)] = args
    val_env = base
    pc = 0
    while True:
        ins = instrs[pc]
        op = ins[0]
        if op == 0:  # OP_CALL
            _, plan, resume, i0, slots, vreg, ea, ea_a, ea_b, ctx = ins
            if resume >= 0:
                vals = regs[vreg]
                value = regs[resume]
                if steps >= limit:
                    # Boundary before the advance: the operand's value
                    # meets the real push frame.
                    return (value, True, val_env, kont, steps, False)
                steps += 1  # the advance step
                vals.append(value)
                kont = kont.parent
                i = i0 + 1
            else:
                if steps >= limit:
                    return (
                        plan.site, False, _ctx_env(machine, base, ctx),
                        kont, steps, False,
                    )
                steps += 1  # the call reduction
                vals = []
                i = 0
            last = len(plan.pending)
            abort = None
            held_src = None
            for slot in slots:
                if steps >= limit:
                    abort = 0  # boundary before evaluating position i
                    break
                stag = slot[0]
                a = slot[1]
                if stag == 0:  # S_REG
                    value = regs[a]
                elif stag == 1:  # S_CONST
                    value = a
                elif stag == 3:  # S_NAME
                    location = bindings.get(a)
                    if location is None:
                        raise UnboundVariableError(
                            f"unbound variable: {a}"
                        )
                    value = cells_get(location)
                    if value is None:
                        raise UnboundVariableError(
                            f"variable {a} refers to an unmapped location"
                        )
                    if value is UNDEFINED:
                        raise UnboundVariableError(
                            f"variable {a} read before initialization"
                        )
                elif stag == 2:  # S_STR
                    value = quote_value(a)
                elif stag == 5:  # S_LAMBDA
                    closed = (
                        base.restrict(free_vars(a)) if closure_fv else base
                    )
                    value = Closure(store.alloc(UNSPECIFIED), a, closed)
                else:  # S_NESTED (an all-simple nested call)
                    inner = a
                    if not (
                        inner.speculate
                        and (fuse_beta or not inner.beta_only)
                    ):
                        abort = 0
                        break
                    fused = _nested_value(
                        machine, store, inner, base, bindings, cells_get,
                        limit - steps,
                    )
                    if fused is _NO_FUSE:
                        inner.speculate = False
                        abort = 0
                        break
                    if fused is _BETA_ONLY:
                        inner.beta_only = True
                        abort = 0
                        break
                    if fused is None:
                        abort = 0
                        break
                    value, cost, held_src = fused
                    steps += cost
                    vals.append(value)
                    if steps >= limit:
                        abort = 2  # value boundary, nested-call held env
                        break
                    steps += 1  # the advance (or complete) step
                    i += 1
                    continue
                steps += 1  # the eval transition
                vals.append(value)
                if steps >= limit:
                    abort = 1  # value boundary
                    break
                steps += 1  # the advance (or complete) step
                i += 1
            if abort is not None:
                pushk = Push(
                    plan.suffixes[i],
                    tuple(vals if abort == 0 else vals[:-1]),
                    plan.order,
                    base if d_env else _saved_env(machine, base, plan, i),
                    kont, plan.site, plan,
                )
                if abort == 0:
                    expr = plan.first if i == 0 else plan.pending[i - 1]
                    penv = (
                        _ctx_env(machine, base, ctx) if i == 0
                        else base if d_env
                        else _saved_env(machine, base, plan, i - 1)
                    )
                    return (expr, False, penv, pushk, steps, False)
                if abort == 2:
                    inner = plan.nested[i]
                    if held_src is not None:
                        held = (
                            held_src[0] if d_env else _saved_env(
                                machine, held_src[0], held_src[1],
                                len(held_src[1].pending),
                            )
                        )
                    else:
                        held = (
                            base if d_env else
                            _saved_env(
                                machine, base, inner, len(inner.pending)
                            )
                        )
                else:
                    held = (
                        _ctx_env(machine, base, ctx) if i == 0
                        else base if d_env
                        else _saved_env(machine, base, plan, i - 1)
                    )
                return (vals[-1], True, held, pushk, steps, False)
            # All positions evaluated (identity order: vals are in
            # original positions) and the complete step counted: the
            # end action applies the call.
            if ea == 0:  # EA_PUSH — park under the real push frame
                kont = Push(
                    plan.suffixes[ea_a], tuple(vals), plan.order,
                    base if d_env else _saved_env(machine, base, plan, ea_a),
                    kont, plan.site, plan,
                )
                regs[vreg] = vals
                pc += 1
                continue
            operator = vals[0]
            ocls = operator.__class__
            env_last = (
                base if d_env else _saved_env(machine, base, plan, last)
            )
            if steps < limit:
                if ea == 2 and ocls is Closure:  # EA_TAIL
                    lam2 = operator.lam
                    if lam2 is code.lam:
                        code2 = code
                    else:
                        # A tail call into *another* compiled lambda
                        # transfers within this activation — the
                        # reconstruction of mutual tail loops (the
                        # trampoline/continuation idiom).  Python-stack
                        # depth does not grow: a transfer is a jump.
                        code2 = gen3_code(lam2)
                    if (
                        code2 is not None
                        and len(lam2.params) == len(vals) - 1
                    ):
                        # The reconstructed loop back-edge: the seed's
                        # apply effects, then jump to instruction 0.
                        steps += 1  # the application step
                        cargs = tuple(vals[1:])
                        locations = store.alloc_many(cargs)
                        base = operator.env.extend(
                            lam2.params, locations
                        )
                        bindings = base._bindings
                        if mode == 1:
                            kont = Return(env_last, kont)
                        elif mode == 3:
                            kont = ReturnStack(locations, env_last, kont)
                        elif mode == 2:
                            if not (
                                isinstance(kont, trc)
                                and kont.code is lam2
                            ):
                                kont = trc(lam2, env_last, kont)
                            # else: a simple self tail call reuses it
                        if code2 is not code:
                            code = code2
                            instrs = code2.instrs
                            regs = [None] * code2.nregs
                        regs[:len(cargs)] = cargs
                        pc = 0
                        continue
                    # An uncompilable or wrong-arity tail call exits
                    # via the call continuation: the generic — exact —
                    # rules apply it (arity errors raise there with the
                    # seed's text).
                if (
                    ocls is Primop
                    and primop_apply
                    and not operator.controls
                ):
                    arity = operator.arity
                    if arity is not None:
                        low, high = arity
                        n = len(vals) - 1
                        if n < low or (high is not None and n > high):
                            raise ArityError(
                                f"{operator.name} expects "
                                f"{_arity_text(low, high)} arguments, "
                                f"got {n}"
                            )
                    steps += 1  # the application step
                    result = operator.proc(machine, store, tuple(vals[1:]))
                    if steps >= limit:
                        return (result, True, env_last, kont, steps, False)
                    regs[ea_a] = result
                    val_env = env_last
                    pc += 1
                    continue
                if (
                    ea == 1  # EA_VALUE: non-tail — descend in-code
                    and ocls is Closure
                    and depth < _VM_MAX_DEPTH
                ):
                    lam2 = operator.lam
                    if len(lam2.params) == len(vals) - 1:
                        code2 = gen3_code(lam2)
                        if code2 is not None:
                            steps += 1  # the application step
                            cargs = tuple(vals[1:])
                            locations = store.alloc_many(cargs)
                            body_env = operator.env.extend(
                                lam2.params, locations
                            )
                            if mode == 0:
                                child = kont
                            elif mode == 1:
                                child = Return(env_last, kont)
                            elif mode == 3:
                                child = ReturnStack(
                                    locations, env_last, kont
                                )
                            else:  # mode 2: the tagged-return rule
                                if (
                                    isinstance(kont, trc)
                                    and kont.code is lam2
                                ):
                                    child = kont
                                else:
                                    child = trc(lam2, env_last, kont)
                            out = _enter_code(
                                machine, store, code2, cargs, body_env,
                                child, kont, steps, limit, depth + 1,
                            )
                            if not out[5]:
                                return out  # boundary / generic exit
                            regs[ea_a] = out[0]
                            val_env = out[2]
                            steps = out[4]
                            pc += 1
                            continue
                if ea == 3:  # EA_DIRECT — an inlined let application
                    steps += 1  # the application step
                    cargs = tuple(vals[1:])
                    locations = store.alloc_many(cargs)
                    base = operator.env.extend(ea_b.params, locations)
                    bindings = base._bindings
                    if mode == 1:
                        kont = Return(env_last, kont)
                    elif mode == 3:
                        kont = ReturnStack(locations, env_last, kont)
                    elif mode == 2:
                        if not (
                            isinstance(kont, trc) and kont.code is ea_b
                        ):
                            kont = trc(ea_b, env_last, kont)
                    for k in range(len(cargs)):
                        regs[ea_a + k] = cargs[k]
                    pc += 1
                    continue
            # Guard failure or batch boundary at the application step:
            # materialize the call continuation; the generic — exact —
            # rules apply whatever the operator really is.
            return (
                operator, True, env_last,
                CallK(tuple(vals[1:]), kont, plan.site),
                steps, False,
            )
        elif op == 1:  # OP_IF
            _, node, tspec, else_pc, sel_fvs, ctx = ins
            if steps >= limit:
                return (
                    node, False, _ctx_env(machine, base, ctx),
                    kont, steps, False,
                )
            steps += 1  # the if reduction
            stag = tspec[0]
            value = _NO_FUSE
            if stag == 4:  # S_NESTED test
                inner = tspec[1]
                if inner.speculate and (fuse_beta or not inner.beta_only):
                    fused = _nested_value(
                        machine, store, inner, base, bindings, cells_get,
                        limit - steps - 1,
                    )
                    if fused is _NO_FUSE:
                        inner.speculate = False
                    elif fused is _BETA_ONLY:
                        inner.beta_only = True
                    elif fused is not None:
                        value, cost, _held = fused
                        steps += cost + 1  # + the select pop
            elif steps + 2 <= limit:
                a = tspec[1]
                if stag == 0:  # S_REG
                    value = regs[a]
                elif stag == 1:  # S_CONST
                    value = a
                elif stag == 2:  # S_STR
                    value = quote_value(a)
                else:  # S_NAME
                    location = bindings.get(a)
                    if location is None:
                        raise UnboundVariableError(
                            f"unbound variable: {a}"
                        )
                    value = cells_get(location)
                    if value is None:
                        raise UnboundVariableError(
                            f"variable {a} refers to an unmapped location"
                        )
                    if value is UNDEFINED:
                        raise UnboundVariableError(
                            f"variable {a} read before initialization"
                        )
                if value is not _NO_FUSE:
                    steps += 2  # the test eval and the select pop
            if value is _NO_FUSE:
                # Boundary or declined speculation: build the real
                # select frame and let the generic loop take the test.
                cenv = _ctx_env(machine, base, ctx)
                saved = cenv if d_select else cenv.restrict(sel_fvs)
                return (
                    node.test, False, cenv,
                    Select(
                        node.consequent, node.alternative, saved, kont
                    ),
                    steps, False,
                )
            # The branch restriction is static: downstream contexts
            # carry the branch free-variable set.
            pc = pc + 1 if is_true(value) else else_pc
            continue
        elif op == 2:  # OP_RET
            _, spec, expr, ctx = ins
            stag = spec[0]
            if stag == 6:  # S_DONE: the value of a completed call
                value = regs[spec[1]]
                env_cur = val_env
            else:
                if steps >= limit:
                    return (
                        expr, False, _ctx_env(machine, base, ctx),
                        kont, steps, False,
                    )
                a = spec[1]
                if stag == 0:
                    value = regs[a]
                elif stag == 1:
                    value = a
                elif stag == 2:
                    value = quote_value(a)
                elif stag == 5:
                    closed = (
                        base.restrict(free_vars(a)) if closure_fv else base
                    )
                    value = Closure(store.alloc(UNSPECIFIED), a, closed)
                else:  # S_NAME
                    location = bindings.get(a)
                    if location is None:
                        raise UnboundVariableError(
                            f"unbound variable: {a}"
                        )
                    value = cells_get(location)
                    if value is None:
                        raise UnboundVariableError(
                            f"variable {a} refers to an unmapped location"
                        )
                    if value is UNDEFINED:
                        raise UnboundVariableError(
                            f"variable {a} read before initialization"
                        )
                steps += 1  # the eval transition
                env_cur = _ctx_env(machine, base, ctx)
            # Pop the frames this activation accumulated (one seed
            # transition each; I_stack pops delete the frame cells).
            while kont is not entry_kont:
                if steps >= limit:
                    return (value, True, env_cur, kont, steps, False)
                steps += 1
                if kont.__class__ is ReturnStack:
                    machine._delete_frame(store, value, kont)
                env_cur = kont.env
                kont = kont.parent
            if depth and steps < limit:
                return (value, True, env_cur, kont, steps, True)
            return (value, True, env_cur, kont, steps, False)
        else:  # OP_DEOPT: hand the expression to the generic loop
            _, expr, ctx = ins
            return (
                expr, False, _ctx_env(machine, base, ctx),
                kont, steps, False,
            )


#: Minimum remaining step budget before a generated function (tier 3b)
#: is built or entered.  Small batches — the lockstep tests' limits of
#: 1..13 — run on the bytecode interpreter, which handles boundaries a
#: few steps apart without the per-entry cost of a generated prologue.
_GEN3_FN_HEADROOM = 64


def _enter_code(machine, store, code, args, base, kont, entry_kont,
                steps, limit, depth=0):
    """Run *code*: the generated per-variant function when one exists
    (building it on first use), else the bytecode interpreter.

    Returns the same 6-tuple as ``_run_code``.  Generated functions
    signal cross-code tail transfer with a ``_TRANSFER`` marker; this
    driver trampolines to the target code's function so mutual tail
    loops consume no Python stack.
    """
    cls = machine.__class__
    fns = code.fns
    fn = fns.get(cls)
    if fn is None:
        if cls in fns or limit - steps < _GEN3_FN_HEADROOM:
            return _run_code(
                machine, store, code, args, base, kont, entry_kont,
                steps, limit, depth,
            )
        fn = build_fn(code, machine)
        fns[cls] = fn
        if fn is None:
            return _run_code(
                machine, store, code, args, base, kont, entry_kont,
                steps, limit, depth,
            )
    while True:
        out = fn(
            machine, store, args, base, kont, entry_kont, steps, limit,
            depth,
        )
        if out[0] is not _TRANSFER:
            return out
        _, code, args, base, kont, steps = out
        fns = code.fns
        fn = fns.get(cls)
        if fn is None:
            if cls not in fns and limit - steps >= _GEN3_FN_HEADROOM:
                fn = build_fn(code, machine)
                fns[cls] = fn
            if fn is None:
                # The interpreter finishes the transferred activation
                # (and performs any further transfers internally).
                return _run_code(
                    machine, store, code, args, base, kont, entry_kont,
                    steps, limit, depth,
                )


def _finish_transfer(machine, store, out, entry_kont, limit, depth):
    """Continue a ``_TRANSFER`` 6-tuple that escaped a direct generated
    -function call (the non-tail descent fast path bypasses
    ``_enter_code``; the rare transfer out of the callee lands here)."""
    _, code, args, base, kont, steps = out
    return _enter_code(
        machine, store, code, args, base, kont, entry_kont, steps,
        limit, depth,
    )


def _kont_ceiling(kont) -> int:
    """The largest store location held directly by *kont* or any
    ancestor frame (environment domains, parked values, retained frame
    locations), or -1 for a bare halt.  Cached per continuation
    (immutable, locations never reused) so a chain of pops pays O(1)
    amortized: the walk stops at the first cached ancestor and fills
    the cache on the way back down."""
    k = kont
    chain = []
    top = -1
    while k is not None:
        try:
            top = k._ceiling
            break
        except AttributeError:
            chain.append(k)
            k = k.parent
    for k in reversed(chain):
        m = top
        for loc in k.direct_locations():
            if loc > m:
                m = loc
        for value in k.direct_values():
            for loc in value.locations():
                if loc > m:
                    m = loc
        k._ceiling = m
        top = m
    return top


class Machine:
    """The properly tail recursive reference implementation I_tail."""

    __slots__ = (
        "policy",
        "_default_closure_env",
        "_default_select_env",
        "_default_assign_env",
        "_default_call_env",
        "_default_push_env",
        "_default_call_frame",
        "_default_apply",
        "_call_env_fv",
        "_call_env_drop",
        "_push_env_fv",
        "_push_env_drop",
        "_closure_env_fv",
        "_fusable",
        "_fuse_lambda",
        "_gen2",
        "_select_env_fv",
        "_fuse_nested",
        "_fuse_if",
        "_fuse_if_call",
        "_fuse_beta",
        "_beta_extra",
        "_frame_return",
        "_plan0",
        "_primop_apply",
        "_gen3",
        "_gen3_mode",
        "_track_refs",
        "trace",
    )

    name = "tail"

    #: Declared shape of the ``call_env`` / ``push_env`` overrides, so
    #: the fused run loop can specialize them: ``"identity"`` (the
    #: I_tail default), ``"restrict-fv"`` (restrict to the free
    #: variables of the pending expressions — I_sfs; the loop then
    #: reads the interned set off the call plan instead of re-deriving
    #: it), ``"drop-empty"`` (the environment is dropped exactly when
    #: nothing is pending — I_evlis), or ``"custom"`` (always call the
    #: hook).  A declaration is honoured only when it appears in the
    #: same class body as the override it describes (checked against
    #: the MRO), so a subclass overriding a hook without re-declaring
    #: its kind safely degrades to ``"custom"``.
    call_env_kind = "identity"
    push_env_kind = "identity"

    #: Declared shape of the ``closure_env`` override, same trust model
    #: as above: ``"identity"`` (I_tail), ``"restrict-free-vars"``
    #: (close over the lambda's free variables — I_free, I_sfs), or
    #: ``"custom"``.
    closure_env_kind = "identity"

    #: Declared shape of the ``select_env`` override:
    #: ``"identity"`` (I_tail), ``"restrict-branch-fv"`` (restrict to
    #: the branches' free variables — I_sfs; the gen-2 if fusion then
    #: reproduces the hook from the interned branch set), or
    #: ``"custom"`` (if fusion disabled).
    select_env_kind = "identity"

    #: Declared shape of an ``apply_procedure`` override, same trust
    #: model as the environment kinds: ``"closure-only"`` promises the
    #: override special-cases closure operators only and defers every
    #: other operator (primops in particular) to the base rule — the
    #: Bigloo-style machine — so primop-operator superinstructions
    #: (fused nested calls and if tests) remain exact even though
    #: closure application is custom.  Anything else disables them.
    apply_kind = "default"

    #: Whether the semantics includes the garbage collection rule of
    #: Figure 5.  I_stack (a pure deletion strategy, section 5) sets
    #: this False: storage is reclaimed only by frame deletion.
    uses_gc_rule = True

    #: Whether injected stores maintain store-edge reference counts
    #: (the I_stack frame-pop fast path; see Store._rc).
    track_refs = False

    #: Declared shape of a custom closure application *for the gen-3
    #: bytecode tier*: ``"tagged-self-reuse"`` promises the override is
    #: exactly the Bigloo-style rule (reuse the continuation when it is
    #: a TaggedReturn for the same lambda at the same arity, else push
    #: a fresh TaggedReturn), so the compiled loop can replicate it.
    #: Trusted only when declared in the same class body as both
    #: ``apply_procedure`` and ``_apply_closure`` (the _hook_kind
    #: model); anything else leaves gen-3 off for custom applies.
    gen3_apply = "default"

    #: The tagged-return continuation class of a "tagged-self-reuse"
    #: apply (set by the Bigloo-style machine); the compiled tier
    #: builds and recognizes these frames directly.
    gen3_tagged: Optional[type] = None

    def __init__(
        self,
        policy: Optional[Policy] = None,
        gen2: bool = True,
        gen3: Optional[bool] = None,
    ):
        self.policy = policy if policy is not None else LeftToRight()
        # A hook still at its I_tail default is the identity on the
        # environment (or the caller's kappa): the dispatch handlers
        # skip the call entirely then.  Computed once per instance so
        # subclass overrides — including overrides added by further
        # subclasses — are always honoured.
        cls = type(self)
        self._default_closure_env = cls.closure_env is Machine.closure_env
        self._default_select_env = cls.select_env is Machine.select_env
        self._default_assign_env = cls.assign_env is Machine.assign_env
        self._default_call_env = cls.call_env is Machine.call_env
        self._default_push_env = cls.push_env is Machine.push_env
        self._default_call_frame = cls.call_frame is Machine.call_frame
        self._default_apply = (
            cls.apply_procedure is Machine.apply_procedure
            and cls._apply_closure is Machine._apply_closure
        )
        call_kind = _hook_kind(cls, "call_env", "call_env_kind")
        push_kind = _hook_kind(cls, "push_env", "push_env_kind")
        closure_kind = _hook_kind(cls, "closure_env", "closure_env_kind")
        self._call_env_fv = call_kind == "restrict-fv"
        self._call_env_drop = call_kind == "drop-empty"
        self._push_env_fv = push_kind == "restrict-fv"
        self._push_env_drop = push_kind == "drop-empty"
        self._closure_env_fv = closure_kind == "restrict-free-vars"
        # Argument fusion (see _fuse_call) needs both saved-environment
        # hooks to have a declared kind; a lambda operand may be fused
        # only when its captured environment is reconstructible from
        # the unrestricted base environment.
        self._fusable = (
            self._default_call_env or self._call_env_fv or self._call_env_drop
        ) and (
            self._default_push_env or self._push_env_fv or self._push_env_drop
        )
        self._fuse_lambda = self._closure_env_fv or (
            self._default_closure_env
            and not (self._call_env_fv or self._push_env_fv)
        )
        # Gen-2 superinstructions (DESIGN.md §7).  Nested-call and
        # fused-if-test speculation skip the seed's policy consultation
        # at the inner call reduction, so they are sound only under the
        # stateless identity policy; the if fusion additionally needs
        # the select hook reconstructible (identity, or the declared
        # I_sfs branch restriction).
        select_kind = _hook_kind(cls, "select_env", "select_env_kind")
        self._select_env_fv = select_kind == "restrict-branch-fv"
        self._gen2 = gen2
        lefttoright = type(self.policy) is LeftToRight
        # Primop-operator superinstructions stay exact under a custom
        # closure application as long as non-closure operators take the
        # base rule (the declared "closure-only" apply kind): the fused
        # transitions never apply a closure then — _fuse_beta below
        # additionally requires the full default apply.
        primop_apply = self._default_apply or (
            _hook_kind(cls, "apply_procedure", "apply_kind")
            == "closure-only"
        )
        self._primop_apply = primop_apply
        self._fuse_nested = (
            gen2 and lefttoright and primop_apply and self._fusable
        )
        self._fuse_if = gen2 and (
            self._default_select_env or self._select_env_fv
        )
        self._fuse_if_call = (
            self._fuse_if and lefttoright and primop_apply
        )
        # The beta superinstruction additionally applies a closure
        # operator whose body is an all-simple primop call, so the
        # skipped call frame must be reconstructible: the identity
        # (I_tail family) or the declared I_gc Return, whose pop is one
        # extra transition restoring the caller environment.  The
        # I_stack ReturnStack pop deletes store cells — observable — so
        # its declared kind declines.
        frame_kind = _hook_kind(cls, "call_frame", "call_frame_kind")
        self._fuse_beta = (
            self._fuse_nested
            and self._default_apply
            and (self._default_call_frame or frame_kind == "return")
        )
        self._beta_extra = 0 if self._default_call_frame else 1
        # The declared I_gc frame lets the fused apply build the Return
        # directly instead of calling the hook.
        self._frame_return = (
            not self._default_call_frame and frame_kind == "return"
        )
        self._plan0 = gen2 and lefttoright
        # Gen-3 bytecode tier (DESIGN.md §7.2).  The compiled loop
        # replicates the seed's apply/frame/pop effects directly, so it
        # must know which of the four frame disciplines the variant
        # uses: 0 = I_tail family (the continuation is unchanged by
        # application), 1 = declared I_gc Return, 2 = the declared
        # Bigloo tagged-return-with-reuse rule, 3 = declared I_stack
        # ReturnStack (pops delete the frame).  Anything undeclared
        # leaves the tier off for that variant.
        mode = None
        if self._default_apply:
            if self._default_call_frame:
                mode = 0
            elif frame_kind == "return":
                mode = 1
            elif frame_kind == "return-stack":
                mode = 3
        elif (
            _hook_kind(cls, "apply_procedure", "gen3_apply")
            == "tagged-self-reuse"
            and _hook_kind(cls, "_apply_closure", "gen3_apply")
            == "tagged-self-reuse"
            and frame_kind == "return"
        ):
            mode = 2
        self._gen3_mode = mode
        self._gen3 = (
            (gen3 if gen3 is not None else gen2)
            and gen2
            and lefttoright
            and self._fusable
            and self._fuse_lambda
            and self._fuse_nested
            and self._fuse_if
            and self._fuse_if_call
            and mode is not None
        )
        self._track_refs = bool(cls.track_refs)
        #: Telemetry sink (a ``repro.telemetry.bus.TraceBus``) or None.
        #: The only cost when unset is one ``is None`` check per batch.
        self.trace = None

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def inject(
        self,
        program: Expr,
        argument: Optional[Expr] = None,
        store: Optional[Store] = None,
        global_env: Optional[Environment] = None,
        trim_globals: bool = True,
    ) -> State:
        """Build the initial configuration.

        With an *argument*, this is Definition 23's
        ``((P D), rho_0, halt, sigma_0)``; without one, the program
        expression itself is evaluated.  ``trim_globals`` restricts
        rho_0 to the free variables of the program and argument (a
        per-program constant change to S_X; pass False for the full
        fixed rho_0 of section 12).

        Injection runs the static pre-pass over the injected
        expression, interning free-variable sets, call plans, and
        constant values once so the step handlers only do lookups.
        """
        if store is None:
            store = Store(track_refs=self._track_refs)
        if global_env is None:
            names = None
            if trim_globals:
                names = set(free_vars(program))
                if argument is not None:
                    names |= free_vars(argument)
            global_env = make_initial_environment(store, names)
        if argument is not None:
            key = (id(program), id(argument))
            expr = _INJECT_WRAPPERS.get(key)
            if expr is None:
                expr = Call((program, argument))
                _INJECT_WRAPPERS[key] = expr
        else:
            expr = program
        annotate(expr)
        if self._gen3:
            register_program(expr)
        self.policy.reset()
        return State(expr, False, global_env, Halt(), store)

    # ------------------------------------------------------------------
    # The transition function
    # ------------------------------------------------------------------

    def step(self, state: State) -> Configuration:
        """One transition of Figure 5 (plus variant rules)."""
        control = state.control
        if state.is_value:
            kont = state.kont
            handler = _VALUE_DISPATCH.get(kont.__class__)
            if handler is None:
                handler = _resolve_value_handler(kont)
            return handler(self, state, control, kont)
        handler = _EXPR_DISPATCH.get(control.__class__)
        if handler is None:
            handler = _resolve_expr_handler(control)
        return handler(self, state, control)

    def _step_expr(self, state: State) -> Configuration:
        expr = state.control
        handler = _EXPR_DISPATCH.get(expr.__class__)
        if handler is None:
            handler = _resolve_expr_handler(expr)
        return handler(self, state, expr)

    def _step_value(self, state: State) -> Configuration:
        kont = state.kont
        handler = _VALUE_DISPATCH.get(kont.__class__)
        if handler is None:
            handler = _resolve_value_handler(kont)
        return handler(self, state, state.control, kont)

    # ------------------------------------------------------------------
    # The fused run loop
    # ------------------------------------------------------------------

    def run_steps(self, state: State, limit: int):
        """Execute up to *limit* transitions of :meth:`step` in one
        Python frame; return ``(configuration, steps_taken)``.

        The registers (control, value flag, environment, continuation)
        live in local variables, so intermediate :class:`State` objects
        are never constructed — one is materialized only when the batch
        is exhausted, the computation halts, or a rare rule (an escape,
        a control primop, a variant-overridden application, an error
        path) delegates to :meth:`step`.  Every transition taken, every
        store effect, and the step count are *identical* to ``limit``
        consecutive ``step`` calls — this is batching, not a different
        semantics — which the differential suite checks by holding the
        fused driver equal to the preserved seed stepper run-for-run.

        Drivers that must observe every configuration (the space meter,
        the lockstep tests) call :meth:`step` directly instead.
        """
        if self.trace is not None:
            return self._traced_run_steps(state, limit)
        control = state.control
        is_value = state.is_value
        env = state.env
        kont = state.kont
        store = state.store
        if limit <= 0:
            return state, 0
        # Hot globals and flags as locals (CPython: LOAD_FAST).
        permutation = self.policy.permutation
        cells_get = store._cells.get
        d_closure = self._default_closure_env
        d_select = self._default_select_env
        d_assign = self._default_assign_env
        d_call = self._default_call_env
        d_push = self._default_push_env
        d_frame = self._default_call_frame
        d_apply = self._default_apply
        call_fv = self._call_env_fv
        call_drop = self._call_env_drop
        push_fv = self._push_env_fv
        push_drop = self._push_env_drop
        fuse = self._fusable
        gen2 = self._gen2
        fuse_if = self._fuse_if
        fuse_if_call = self._fuse_if_call
        fuse_beta = self._fuse_beta
        var_addrs_get = _VAR_ADDRS.get
        if_tests_get = _IF_TESTS.get
        plan0 = self._plan0
        plan0_get = _IDENTITY_PLANS.get
        gen3 = self._gen3
        gen3_mode2 = gen3 and self._gen3_mode == 2
        gen3_trc = type(self).gen3_tagged
        steps = 0
        while steps < limit:
            steps += 1
            if is_value:
                kcls = kont.__class__
                if kcls is Push:
                    pending = kont.pending
                    if pending:
                        plan = kont.plan
                        done = kont.done
                        if (
                            fuse
                            and plan is not None
                            and plan.suffixes[len(done)] is pending
                        ):
                            # Fuse the advance with the run of simple
                            # subexpressions that follows it.
                            vals = list(done)
                            vals.append(control)
                            control, is_value, env, kont, steps = _fuse_call(
                                self, store, plan, vals, len(vals),
                                kont.env, kont.parent, steps, limit,
                            )
                            continue
                        done = done + (control,)
                        planned = (
                            plan is not None
                            and plan.suffixes[len(done) - 1] is pending
                        )
                        rest = (
                            plan.suffixes[len(done)] if planned
                            else pending[1:]
                        )
                        if d_push:
                            saved = kont.env
                        elif push_fv and planned:
                            saved = kont.env.restrict(
                                plan.suffix_fvs[len(done)]
                            )
                        elif push_drop:
                            saved = kont.env if rest else EMPTY_ENV
                        else:
                            saved = self.push_env(kont.env, rest)
                        control = pending[0]
                        is_value = False
                        env = kont.env
                        kont = Push(
                            rest, done, kont.order, saved, kont.parent,
                            kont.site, plan,
                        )
                        continue
                    values_in_order = kont.done + (control,)
                    plan = kont.plan
                    if plan is not None and plan.is_identity:
                        control = values_in_order[0]
                        args = values_in_order[1:]
                    else:
                        original: list = [None] * len(values_in_order)
                        for position, evaluated in zip(
                            kont.order, values_in_order
                        ):
                            original[position] = evaluated
                        control = original[0]
                        args = tuple(original[1:])
                    env = kont.env
                    kont = CallK(args, kont.parent, kont.site)
                    continue
                if kcls is CallK:
                    args = kont.args
                    parent = kont.parent
                    if d_apply:
                        ocls = control.__class__
                        if ocls is Closure:
                            lam = control.lam
                            params = lam.params
                            if len(params) != len(args):
                                raise ArityError(
                                    f"procedure expects {len(params)} "
                                    f"arguments, got {len(args)}"
                                )
                            locations = store.alloc_many(args)
                            body_env = control.env.extend(params, locations)
                            entry = parent
                            if not d_frame:
                                parent = self.call_frame(
                                    locations, env, parent
                                )
                            if gen3:
                                code = gen3_code(lam)
                                if code is not None:
                                    (
                                        control, is_value, env, kont,
                                        steps, _r,
                                    ) = _enter_code(
                                        self, store, code, args, body_env,
                                        parent, entry, steps, limit,
                                    )
                                    continue
                            control = lam.body
                            is_value = False
                            env = body_env
                            kont = parent
                            continue
                        if ocls is Primop and not control.controls:
                            arity = control.arity
                            if arity is not None:
                                low, high = arity
                                if len(args) < low or (
                                    high is not None and len(args) > high
                                ):
                                    raise ArityError(
                                        f"{control.name} expects "
                                        f"{_arity_text(low, high)} arguments, "
                                        f"got {len(args)}"
                                    )
                            control = control.proc(self, store, args)
                            kont = parent
                            continue
                    if (
                        gen3_mode2
                        and control.__class__ is Closure
                        and len(control.lam.params) == len(args)
                    ):
                        # The declared Bigloo tagged-return apply,
                        # replicated so the compiled tier can take over:
                        # a simple self tail call reuses the frame,
                        # anything else pushes a fresh tagged return.
                        lam = control.lam
                        code = gen3_code(lam)
                        if code is not None:
                            locations = store.alloc_many(args)
                            body_env = control.env.extend(
                                lam.params, locations
                            )
                            trc = gen3_trc
                            if (
                                isinstance(parent, trc)
                                and parent.code is lam
                            ):
                                child, entry = parent, parent.parent
                            else:
                                child, entry = trc(lam, env, parent), parent
                            control, is_value, env, kont, steps, _r = (
                                _enter_code(
                                    self, store, code, args, body_env,
                                    child, entry, steps, limit,
                                )
                            )
                            continue
                    # Escapes, control primops, overridden application
                    # (Bigloo), and the not-a-procedure error: take the
                    # exact step-path.
                    configuration = self.apply_procedure(
                        State(control, True, env, kont, store),
                        control,
                        args,
                        parent,
                    )
                    control = configuration.control
                    is_value = configuration.is_value
                    env = configuration.env
                    kont = configuration.kont
                    continue
                if kcls is Select:
                    control = (
                        kont.consequent if is_true(control)
                        else kont.alternative
                    )
                    is_value = False
                    env = kont.env
                    kont = kont.parent
                    continue
                if kcls is Return:
                    env = kont.env
                    kont = kont.parent
                    continue
                if kcls is Halt:
                    return Final(control, store), steps
                if kcls is Assign:
                    location = kont.env.lookup(kont.name)
                    if location is None or location not in store:
                        raise UnboundVariableError(
                            f"assignment to unbound variable: {kont.name}"
                        )
                    store.write(location, control)
                    control = UNSPECIFIED
                    env = kont.env
                    kont = kont.parent
                    continue
                # ReturnStack, TaggedReturn, unknown: the exact step-path.
                configuration = self._step_value(
                    State(control, True, env, kont, store)
                )
                if configuration.is_final:
                    return configuration, steps
                control = configuration.control
                is_value = configuration.is_value
                env = configuration.env
                kont = configuration.kont
                continue
            cls = control.__class__
            if cls is Var:
                name = control.name
                location = None
                if gen2:
                    addr = var_addrs_get(control)
                    if addr is not None:
                        if env._frame_names is addr[2]:
                            location = env._frame_locs[addr[0]]
                        else:
                            location = _quick_location(
                                env, addr[0], addr[1]
                            )
                if location is None:
                    location = env._bindings.get(name)
                    if location is None:
                        raise UnboundVariableError(
                            f"unbound variable: {name}"
                        )
                value = cells_get(location)
                if value is None:
                    raise UnboundVariableError(
                        f"variable {name} refers to an unmapped location"
                    )
                if value is UNDEFINED:
                    raise UnboundVariableError(
                        f"variable {name} read before initialization"
                    )
                control = value
                is_value = True
                continue
            if cls is Call:
                # Under the stateless identity policy a site's plan is
                # permutation-independent: one dict probe replaces the
                # policy consult + memo call after the first visit.
                plan = plan0_get(control) if plan0 else None
                if plan is None:
                    order = permutation(len(control.exprs))
                    plan = call_plan(control, order)
                if fuse:
                    control, is_value, env, kont, steps = _fuse_call(
                        self, store, plan, [], 0, env, kont, steps, limit,
                    )
                    continue
                pending = plan.pending
                if d_call:
                    saved = env
                elif call_fv:
                    saved = env.restrict(plan.suffix_fvs[0])
                elif call_drop:
                    saved = env if pending else EMPTY_ENV
                else:
                    saved = self.call_env(env, pending)
                kont = Push(
                    pending, (), plan.order, saved, kont,
                    site=control, plan=plan,
                )
                control = plan.first
                continue
            if cls is Quote:
                control = quote_value(control)
                is_value = True
                continue
            if cls is If:
                test = control.test
                if fuse_if:
                    # Fuse the test evaluation and the select step for
                    # the measured shapes, never materializing the
                    # transient select frame: a simple test is +2
                    # transitions, an all-simple nested-call test is
                    # its fuse_cost +1 (committed only when the budget
                    # fits and the speculated operator is a primop).
                    tcls = test.__class__
                    value = _NO_FUSE
                    cost = 2
                    if tcls is Var:
                        if steps + 2 <= limit:
                            name = test.name
                            location = None
                            addr = var_addrs_get(test)
                            if addr is not None:
                                if env._frame_names is addr[2]:
                                    location = env._frame_locs[addr[0]]
                                else:
                                    location = _quick_location(
                                        env, addr[0], addr[1]
                                    )
                            if location is None:
                                location = env._bindings.get(name)
                                if location is None:
                                    raise UnboundVariableError(
                                        f"unbound variable: {name}"
                                    )
                            value = cells_get(location)
                            if value is None:
                                raise UnboundVariableError(
                                    f"variable {name} refers to an "
                                    f"unmapped location"
                                )
                            if value is UNDEFINED:
                                raise UnboundVariableError(
                                    f"variable {name} read before "
                                    f"initialization"
                                )
                    elif tcls is Quote:
                        if steps + 2 <= limit:
                            value = quote_value(test)
                    elif fuse_if_call and tcls is Call:
                        plan = if_tests_get(control)
                        if (
                            plan is not None
                            and plan.speculate
                            and (fuse_beta or not plan.beta_only)
                        ):
                            fused = _nested_value(
                                self, store, plan, env, env._bindings,
                                cells_get, limit - steps - 1,
                            )
                            if fused is _NO_FUSE:
                                plan.speculate = False
                            elif fused is _BETA_ONLY:
                                plan.beta_only = True
                            elif fused is not None:
                                # The select pop restores the saved
                                # environment, so the fused call's held
                                # environment never becomes observable.
                                value, cost, _held = fused
                                cost += 1
                    if value is not _NO_FUSE:
                        steps += cost
                        if not d_select:
                            env = env.restrict(
                                branch_free_vars(
                                    control.consequent, control.alternative
                                )
                            )
                        control = (
                            control.consequent if is_true(value)
                            else control.alternative
                        )
                        continue
                saved = (
                    env if d_select
                    else self.select_env(
                        env, control.consequent, control.alternative
                    )
                )
                kont = Select(
                    control.consequent, control.alternative, saved, kont
                )
                control = test
                continue
            if cls is Lambda:
                closed = env if d_closure else self.closure_env(control, env)
                tag = store.alloc(UNSPECIFIED)
                control = Closure(tag, control, closed)
                is_value = True
                continue
            if cls is SetBang:
                saved = env if d_assign else self.assign_env(env, control.name)
                kont = Assign(control.name, saved, kont)
                control = control.expr
                continue
            # Unknown expression class: the exact step-path (MRO
            # fallback or the seed's StuckError).
            configuration = self._step_expr(
                State(control, False, env, kont, store)
            )
            control = configuration.control
            is_value = configuration.is_value
            env = configuration.env
            kont = configuration.kont
        return State(control, is_value, env, kont, store), steps

    def _traced_run_steps(self, state: State, limit: int):
        """The run driver used while a trace bus is attached: every
        transition goes through :meth:`step` (the exact per-step path)
        and is published before it is taken.  Fusion is pure batching,
        so bypassing it here changes no transition — it only makes each
        one observable."""
        bus = self.trace
        step = self.step
        steps = 0
        while steps < limit:
            bus.emit_step_state(state)
            configuration = step(state)
            steps += 1
            if configuration.is_final:
                return configuration, steps
            state = configuration
        return state, steps

    # ------------------------------------------------------------------
    # Procedure application
    # ------------------------------------------------------------------

    def apply_procedure(
        self, state: State, operator: Value, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        """The call continuation rule, dispatched on the operator."""
        if isinstance(operator, Closure):
            return self._apply_closure(state, operator, args, kont)
        if isinstance(operator, Primop):
            return self._apply_primop(state, operator, args, kont)
        if isinstance(operator, Escape):
            if len(args) != 1:
                raise ArityError(
                    f"escape procedure expects 1 argument, got {len(args)}"
                )
            return State(args[0], True, EMPTY_ENV, operator.kont, state.store)
        raise NotAProcedureError(f"not a procedure: {operator!r}")

    def _apply_closure(
        self, state: State, closure: Closure, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        lam = closure.lam
        params = lam.params
        if len(params) != len(args):
            raise ArityError(
                f"procedure expects {len(params)} arguments, got {len(args)}"
            )
        locations = state.store.alloc_many(args)
        body_env = closure.env.extend(params, locations)
        if self._default_call_frame:
            body_kont = kont
        else:
            body_kont = self.call_frame(locations, state.env, kont)
        return State(lam.body, False, body_env, body_kont, state.store)

    def _apply_primop(
        self, state: State, primop: Primop, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        if primop.arity is not None:
            low, high = primop.arity
            if len(args) < low or (high is not None and len(args) > high):
                raise ArityError(
                    f"{primop.name} expects {_arity_text(low, high)} arguments, "
                    f"got {len(args)}"
                )
        if primop.controls:
            return primop.proc(self, state, args, kont)
        result = primop.proc(self, state.store, args)
        return State(result, True, state.env, kont, state.store)

    # ------------------------------------------------------------------
    # Variant hooks (I_tail defaults)
    # ------------------------------------------------------------------

    def closure_env(self, lam: Lambda, env: Environment) -> Environment:
        """Environment captured by a closure (I_tail: all of scope)."""
        return env

    def select_env(self, env: Environment, consequent: Expr, alternative: Expr):
        """Environment saved in a select continuation."""
        return env

    def assign_env(self, env: Environment, name: str) -> Environment:
        """Environment saved in an assign continuation."""
        return env

    def call_env(self, env: Environment, pending: Tuple[Expr, ...]) -> Environment:
        """Environment saved in the push continuation at call reduction."""
        return env

    def push_env(self, env: Environment, rest: Tuple[Expr, ...]) -> Environment:
        """Environment saved when the push continuation advances."""
        return env

    def call_frame(
        self,
        frame_locations: Tuple[Location, ...],
        caller_env: Environment,
        kont: Kont,
    ) -> Kont:
        """Continuation for a closure body (I_tail: the caller's kappa
        unchanged — every call is a goto)."""
        return kont

    def compact(self, state: State) -> State:
        """Optional continuation compaction, run by the meter alongside
        the GC rule.  The base machines do nothing; Baker's MTA variant
        collapses runs of return frames here."""
        return state

    # ------------------------------------------------------------------
    # I_stack frame deletion (used only by variants with ReturnStack)
    # ------------------------------------------------------------------

    def _delete_frame(self, store: Store, value: Value, kont: ReturnStack) -> None:
        """Delete the largest subset of the frame that creates no
        dangling pointer: frame locations unreachable from the
        post-return configuration.

        When the store keeps reference counts (``track_refs``), the
        full reachability walk — O(live store) per pop, the dominant
        cost of I_stack — is usually avoided.  A frame location is
        unreachable iff no edge of the reachability graph reaches it:
        store edges are counted exactly by ``Store._rc``; direct root
        edges from the returned value are ``value.locations()``; and
        direct root edges from the continuation chain are ruled out
        wholesale when the chain's largest rooted location
        (``_kont_ceiling``) lies below every candidate.  Escapes hide
        their captured chain from the counts, so the sticky
        ``_escaped`` flag forces the walk.  Intra-frame chains (an
        argument cell referencing another) are resolved by a small
        fixpoint with overlay decrements.  The fast path commits only
        outcomes the walk would produce: either every candidate proved
        deletable, or every survivor is pinned by the returned value
        itself (an rc-pinned survivor might be pinned by garbage the
        walk would see through — fall back)."""
        cells = store._cells
        candidates = [loc for loc in kont.frame if loc in cells]
        if not candidates:
            return
        rc = store._rc
        if rc is not None and not store._escaped:
            # Roots of the post-return configuration: the returned
            # value, the restored environment, and the *parent* chain —
            # not the frame being popped (its locations are the
            # candidates).
            ceiling = _kont_ceiling(kont.parent)
            env = kont.env
            if env is not None:
                for loc in env.location_tuple():
                    if loc > ceiling:
                        ceiling = loc
            if ceiling < min(candidates):
                held = set(value.locations())
                chosen = set()
                delta = {}
                changed = True
                while changed:
                    changed = False
                    for loc in candidates:
                        if loc in chosen or loc in held:
                            continue
                        if rc.get(loc, 0) - delta.get(loc, 0) == 0:
                            chosen.add(loc)
                            changed = True
                            for ref in cells[loc].locations():
                                delta[ref] = delta.get(ref, 0) + 1
                if len(chosen) == len(candidates):
                    store.delete_many(candidates)
                    return
                if all(
                    loc in held
                    for loc in candidates
                    if loc not in chosen
                ):
                    if chosen:
                        store.delete_many(
                            [loc for loc in candidates if loc in chosen]
                        )
                    return
        live = reachable_locations(store, (value,), kont.env, kont.parent)
        deletable = [loc for loc in candidates if loc not in live]
        if deletable:
            store.delete_many(deletable)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} policy={self.policy!r}>"


# ---------------------------------------------------------------------------
# Expression handlers (the left column of Figure 5), one per class.
# ---------------------------------------------------------------------------


def _expr_quote(machine: Machine, state: State, expr: Quote) -> State:
    return State(quote_value(expr), True, state.env, state.kont, state.store)


def _expr_var(machine: Machine, state: State, expr: Var) -> State:
    env = state.env
    location = env.lookup(expr.name)
    if location is None:
        raise UnboundVariableError(f"unbound variable: {expr.name}")
    value = state.store.get(location)
    if value is None:
        raise UnboundVariableError(
            f"variable {expr.name} refers to an unmapped location"
        )
    if value is UNDEFINED:
        raise UnboundVariableError(
            f"variable {expr.name} read before initialization"
        )
    return State(value, True, env, state.kont, state.store)


def _expr_lambda(machine: Machine, state: State, expr: Lambda) -> State:
    env = state.env
    if machine._default_closure_env:
        closed = env
    else:
        closed = machine.closure_env(expr, env)
    tag = state.store.alloc(UNSPECIFIED)
    return State(Closure(tag, expr, closed), True, env, state.kont, state.store)


def _expr_if(machine: Machine, state: State, expr: If) -> State:
    env = state.env
    if machine._default_select_env:
        saved = env
    else:
        saved = machine.select_env(env, expr.consequent, expr.alternative)
    kont = Select(expr.consequent, expr.alternative, saved, state.kont)
    return State(expr.test, False, env, kont, state.store)


def _expr_set(machine: Machine, state: State, expr: SetBang) -> State:
    env = state.env
    if machine._default_assign_env:
        saved = env
    else:
        saved = machine.assign_env(env, expr.name)
    kont = Assign(expr.name, saved, state.kont)
    return State(expr.expr, False, env, kont, state.store)


def _expr_call(machine: Machine, state: State, expr: Call) -> State:
    order = machine.policy.permutation(len(expr.exprs))
    plan = call_plan(expr, order)  # validates the permutation once
    env = state.env
    pending = plan.pending
    if machine._default_call_env:
        saved = env
    else:
        saved = machine.call_env(env, pending)
    kont = Push(pending, (), plan.order, saved, state.kont, expr, plan)
    return State(plan.first, False, env, kont, state.store)


_EXPR_DISPATCH = {
    Quote: _expr_quote,
    Var: _expr_var,
    Lambda: _expr_lambda,
    If: _expr_if,
    SetBang: _expr_set,
    Call: _expr_call,
}


def _resolve_expr_handler(expr):
    """MRO fallback for Expr subclasses, cached; stuck otherwise."""
    for base in expr.__class__.__mro__[1:]:
        handler = _EXPR_DISPATCH.get(base)
        if handler is not None:
            _EXPR_DISPATCH[expr.__class__] = handler
            return handler
    raise StuckError(f"not a Core Scheme expression: {expr!r}")


# ---------------------------------------------------------------------------
# Value handlers (the right column of Figure 5), one per continuation.
# ---------------------------------------------------------------------------


def _value_halt(machine: Machine, state: State, value, kont: Halt):
    return Final(value, state.store)


def _value_select(machine: Machine, state: State, value, kont: Select) -> State:
    branch = kont.consequent if is_true(value) else kont.alternative
    return State(branch, False, kont.env, kont.parent, state.store)


def _value_assign(machine: Machine, state: State, value, kont: Assign) -> State:
    location = kont.env.lookup(kont.name)
    if location is None or location not in state.store:
        raise UnboundVariableError(
            f"assignment to unbound variable: {kont.name}"
        )
    state.store.write(location, value)
    return State(UNSPECIFIED, True, kont.env, kont.parent, state.store)


def _value_push(machine: Machine, state: State, value, kont: Push):
    pending = kont.pending
    if pending:
        plan = kont.plan
        done = kont.done
        if plan is not None and plan.suffixes[len(done)] is pending:
            rest = plan.suffixes[len(done) + 1]
        else:  # hand-built frame: fall back to slicing
            rest = pending[1:]
        if machine._default_push_env:
            saved = kont.env
        else:
            saved = machine.push_env(kont.env, rest)
        new_kont = Push(
            rest, done + (value,), kont.order, saved, kont.parent,
            kont.site, plan,
        )
        return State(pending[0], False, kont.env, new_kont, state.store)
    # All subexpressions evaluated: unpermute and form the call.
    values_in_order = kont.done + (value,)
    plan = kont.plan
    if plan is not None and plan.is_identity:
        operator = values_in_order[0]
        args = values_in_order[1:]
    else:
        original: list = [None] * len(values_in_order)
        for position, evaluated in zip(kont.order, values_in_order):
            original[position] = evaluated
        operator = original[0]
        args = tuple(original[1:])
    return State(
        operator, True, kont.env,
        CallK(args, kont.parent, kont.site), state.store,
    )


def _value_call(machine: Machine, state: State, value, kont: CallK):
    return machine.apply_procedure(state, value, kont.args, kont.parent)


def _value_return(machine: Machine, state: State, value, kont: Return) -> State:
    return State(value, True, kont.env, kont.parent, state.store)


def _value_return_stack(
    machine: Machine, state: State, value, kont: ReturnStack
) -> State:
    machine._delete_frame(state.store, value, kont)
    return State(value, True, kont.env, kont.parent, state.store)


_VALUE_DISPATCH = {
    Halt: _value_halt,
    Select: _value_select,
    Assign: _value_assign,
    Push: _value_push,
    CallK: _value_call,
    Return: _value_return,
    ReturnStack: _value_return_stack,
}


def _resolve_value_handler(kont):
    """MRO fallback for Kont subclasses (e.g. the Bigloo TaggedReturn),
    cached under the concrete class; stuck otherwise."""
    for base in kont.__class__.__mro__[1:]:
        handler = _VALUE_DISPATCH.get(base)
        if handler is not None:
            _VALUE_DISPATCH[kont.__class__] = handler
            return handler
    raise StuckError(f"unknown continuation: {kont!r}")


def constant_value(constant) -> Value:
    """Map a quoted constant datum to a runtime value."""
    if isinstance(constant, bool):
        return TRUE if constant else FALSE
    if isinstance(constant, int):
        return Num(constant)
    if isinstance(constant, Symbol):
        return Sym(constant.name)
    if isinstance(constant, CharDatum):
        return CharValue(constant.value)
    if isinstance(constant, str):
        return Str(constant)
    if constant == ():
        return NIL
    raise StuckError(f"not an atomic constant: {constant!r}")


def _arity_text(low: int, high: Optional[int]) -> str:
    if high is None:
        return f"at least {low}"
    if low == high:
        return str(low)
    return f"{low} to {high}"


# The prepass imports constant_value from this module (lazily, for the
# quote-value cache); importing it here at the bottom keeps a single
# import-time ordering for both directions of the knot.
from ..compiler.prepass import (  # noqa: E402
    _IDENTITY_PLANS,
    _IF_TESTS,
    _VAR_ADDRS,
    annotate,
    body_fuse_plan,
    call_plan,
    if_test_plan,
    quote_value,
)
from ..compiler.bytecode import (  # noqa: E402
    gen3_code,
    register_program,
)
from ..compiler.pycodegen import (  # noqa: E402
    _TRANSFER,
    build_beta_fn,
    build_fn,
)
