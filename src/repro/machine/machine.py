"""The CEKS reference machine (Figure 5) with variant hooks.

:class:`Machine` implements the properly tail recursive semantics
I_tail exactly; the other reference implementations of sections 8-10
are subclasses (:mod:`repro.machine.variants`) that override precisely
the hooks corresponding to the rules the paper changes:

========================  =====================================================
hook                      paper rule it parameterizes
========================  =====================================================
``closure_env``           the lambda reduction rule (I_free, I_sfs close over
                          free variables only)
``select_env``            the if reduction rule (I_sfs restricts)
``assign_env``            the set! reduction rule (I_sfs restricts)
``call_env``              the procedure-call reduction rule (I_sfs restricts
                          to the free variables of the pending expressions)
``push_env``              the push continuation rule (I_evlis drops the
                          environment before the last subexpression; I_sfs
                          restricts to the free variables of the rest)
``call_frame``            the closure-call continuation rule (I_gc creates
                          return:(rho, kappa); I_stack creates
                          return:(A, rho, kappa))
========================  =====================================================

The transition function is *compiled once*: :meth:`Machine.inject`
runs the static pre-pass (:mod:`repro.compiler.prepass`), and stepping
dispatches through class-keyed tables — one handler per expression
class and per continuation class — instead of isinstance ladders.
Handlers read interned :class:`~repro.compiler.prepass.CallPlan`
suffixes rather than slicing tuples, and machines that keep a hook at
its I_tail default (identity) skip the hook call entirely.  None of
this changes a single transition: the preserved seed stepper
(:mod:`repro.machine.reference_step`) is held equal to this one —
answers, step counts, Definition 21/23 space — by the lockstep
differential suite.

The second generation of the fused run loop (``gen2=True``, the
default) adds the telemetry-guided superinstructions of DESIGN.md §7:
quickened variable reads (a prepass lexical address checked against
the runtime frame chain, falling back to named lookup whenever the
chain was restricted or the name is ``set!``-mutable), inlined
all-simple nested calls (the ``Push -> eval-operand -> CallK`` cycle
of a ``(prim v ...)`` operand collapsed into one batched transition),
and fused ``If`` tests (the transient select frame never built).  All
of it is still pure batching: every skipped continuation is transient
— created and consumed strictly inside one ``run_steps`` batch — so
step counts, store effects, answers, and the Figure 7/8 space of every
configuration a driver can observe are unchanged.  ``gen2=False``
reproduces the first-generation loop exactly (the benchmark baseline).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..syntax.ast import Call, Expr, If, Lambda, Quote, SetBang, Var
from ..syntax.free_vars import branch_free_vars, free_vars
from .config import Configuration, Final, State
from .continuation import (
    Assign,
    CallK,
    Halt,
    Kont,
    Push,
    Return,
    ReturnStack,
    Select,
)
from .environment import EMPTY_ENV, Environment
from .errors import (
    ArityError,
    NotAProcedureError,
    StuckError,
    UnboundVariableError,
)
from .gc import reachable_locations
from .policy import LeftToRight, Policy
from .primitives import make_initial_environment
from .store import Store
from .values import (
    Char as CharValue,
    Closure,
    Escape,
    FALSE,
    Location,
    NIL,
    Num,
    Primop,
    Str,
    Sym,
    TRUE,
    UNDEFINED,
    UNSPECIFIED,
    Value,
    is_true,
)
from ..reader.datum import Char as CharDatum, Symbol

# Imported late in the module (after constant_value is defined) to
# close the machine <-> prepass knot; see the bottom of this file.
annotate = None
call_plan = None
quote_value = None
if_test_plan = None
body_fuse_plan = None
_VAR_ADDRS: dict = {}
_IF_TESTS: dict = {}
_IDENTITY_PLANS: dict = {}


def _hook_kind(cls, hook_name: str, kind_name: str) -> str:
    """The declared kind of a variant hook, trusted only when the class
    that defines the hook also declares the kind (see
    ``Machine.call_env_kind``)."""
    for klass in cls.__mro__:
        if hook_name in klass.__dict__:
            if klass is Machine:
                return "identity"
            return klass.__dict__.get(kind_name, "custom")
    return "identity"


def _saved_env(machine, base, plan, j):
    """The environment saved in the *j*-th push frame of *plan*, rebuilt
    directly from *base* (the environment the call reduced in, or the
    frame environment fusion started from).

    Content-identical to the seed's chained hooks: the suffix
    free-variable sets shrink monotonically, so
    ``restrict(restrict(e, A), B) == restrict(e, B)`` whenever
    ``B <= A`` — restricting *base* once equals restricting each
    intermediate saved environment in turn.  Only called for machines
    whose hook kinds are declared (``Machine._fusable``).
    """
    if j == 0:
        if machine._default_call_env:
            return base
        if machine._call_env_fv:
            fvs = plan.suffix_fvs[0]
            return base.restrict(fvs) if fvs else EMPTY_ENV
        return base if plan.pending else EMPTY_ENV  # drop-empty
    if machine._default_push_env:
        return base
    if machine._push_env_fv:
        fvs = plan.suffix_fvs[j]
        return base.restrict(fvs) if fvs else EMPTY_ENV
    return base if plan.suffixes[j] else EMPTY_ENV  # drop-empty


#: Sentinel returned by :func:`_nested_value` when the speculated
#: operator turns out not to be a non-control primop: everything
#: evaluated up to that point was pure (Var reads and Quote constants),
#: so the generic path replays the nested call exactly.
_NO_FUSE = object()

#: Sentinel for the machine-*dependent* decline: the operator is a
#: closure, which only beta-capable machines can fuse.  Recorded as
#: ``CallPlan.beta_only`` rather than clearing ``speculate`` — plans
#: are interned per site and shared across machines, so a decline that
#: another machine would have accepted must not poison the plan.
_BETA_ONLY = object()


def _quick_location(env, slot, path):
    """The location of a quickened variable, read off the runtime frame
    chain, or None when the chain does not match the static *path* (a
    restricted, hand-built, or global frame) — the caller then falls
    back to named lookup.

    *path* is the tuple of enclosing lambdas' parameter tuples from the
    innermost out to the binding lambda; a frame matches a level only
    when its recorded parameter tuple is the *same object* (lambda
    nodes own their params tuple), which makes a match a proof that the
    frame is that lambda's body frame — and then ``_frame_locs[slot]``
    is by construction the location its ``extend`` bound the name to.
    """
    frame = env
    last = len(path) - 1
    for level, params in enumerate(path):
        if frame is None or frame._frame_names is not params:
            return None
        if level == last:
            return frame._frame_locs[slot]
        frame = frame._parent
    return None


def _nested_value(machine, store, plan, env, bindings, cells_get, budget):
    """Evaluate an all-simple nested call (``CallPlan.simple_all``) to
    its value without materializing any of its frames.

    Returns ``(value, cost, held)`` on success, where *cost* is the
    number of seed transitions consumed and *held* is either None (the
    batch-boundary environment is the nested call's own last saved
    environment) or a ``(body_env, body_plan)`` pair (a fused closure
    body ran last — its last saved environment holds the value); or
    None when the transitions would overflow *budget* (the caller then
    takes the generic path without giving up on the site); or
    :data:`_NO_FUSE` when the operator is not fusable — the caller
    records that on the plan so the site is not re-speculated.

    Two operator shapes fuse.  A **non-control primop** costs
    ``plan.fuse_cost``.  A **closure whose body is itself an all-simple
    call of a primop** (the accessor/predicate shape — the beta
    superinstruction) costs both calls' fuse_cost plus the return-frame
    pop on machines whose ``call_frame`` is the declared I_gc Return.

    Exactness: every subexpression is a Var or Quote, so nothing before
    the application step touches the store — the speculation (operator
    reads, the closure-body operator resolved through the argument list
    or the closure environment, never the frame) has no effects to
    undo, and errors raise at the same logical transition as the
    seed's; a speculative read that would fail just declines, and the
    generic replay raises at the exact seed point.  Only invoked under
    the stateless left-to-right policy (the seed would consult the
    policy at the skipped call reductions).
    """
    kinds = plan.kinds
    addrs = plan.addrs
    consts = plan.consts
    exprs = plan.in_order
    op = None
    vals = []
    for i in range(len(exprs)):
        if kinds[i] == 1:  # Var
            expr = exprs[i]
            addr = addrs[i]
            location = None
            if addr is not None:
                if env._frame_names is addr[2]:
                    location = env._frame_locs[addr[0]]
                else:
                    location = _quick_location(env, addr[0], addr[1])
            if location is None:
                location = bindings.get(expr.name)
                if location is None:
                    raise UnboundVariableError(
                        f"unbound variable: {expr.name}"
                    )
            value = cells_get(location)
            if value is None:
                raise UnboundVariableError(
                    f"variable {expr.name} refers to an unmapped location"
                )
            if value is UNDEFINED:
                raise UnboundVariableError(
                    f"variable {expr.name} read before initialization"
                )
        else:  # Quote
            value = consts[i]
            if value is None:
                value = quote_value(exprs[i])
        if i == 0:
            op = value
        else:
            vals.append(value)
    args = tuple(vals)
    ocls = op.__class__
    if ocls is Primop:
        if op.controls:
            return _NO_FUSE
        cost = plan.fuse_cost
        if cost > budget:
            return None
        arity = op.arity
        if arity is not None:
            low, high = arity
            if len(args) < low or (high is not None and len(args) > high):
                raise ArityError(
                    f"{op.name} expects {_arity_text(low, high)} arguments, "
                    f"got {len(args)}"
                )
        return op.proc(machine, store, args), cost, None
    if ocls is Closure:
        if not machine._fuse_beta:
            return _BETA_ONLY
        lam = op.lam
        params = lam.params
        if len(params) != len(args):
            return _NO_FUSE  # the generic replay raises the ArityError
        body = body_fuse_plan(lam)
        if body is None:
            return _NO_FUSE
        # Resolve the body operator without building the frame (pure):
        # a parameter reads the just-computed argument, a free name
        # reads the closure environment.
        bop = None
        if body.kinds[0] == 1:
            bname = body.first.name
            if bname in params:
                bop = args[params.index(bname)]
            else:
                location = op.env._bindings.get(bname)
                if location is not None:
                    bop = cells_get(location)
        if bop is None or bop.__class__ is not Primop or bop.controls:
            return _NO_FUSE
        cost = plan.fuse_cost + body.fuse_cost + machine._beta_extra
        if cost > budget:
            return None
        # Commit: the seed's store effects, in the seed's order.
        locations = store.alloc_many(args)
        body_env = op.env.extend(params, locations)
        bbindings = body_env._bindings
        bkinds = body.kinds
        bconsts = body.consts
        bexprs = body.in_order
        bvals = []
        for j in range(1, len(bexprs)):
            if bkinds[j] == 1:
                expr = bexprs[j]
                location = bbindings.get(expr.name)
                if location is None:
                    raise UnboundVariableError(
                        f"unbound variable: {expr.name}"
                    )
                value = cells_get(location)
                if value is None:
                    raise UnboundVariableError(
                        f"variable {expr.name} refers to an unmapped location"
                    )
                if value is UNDEFINED:
                    raise UnboundVariableError(
                        f"variable {expr.name} read before initialization"
                    )
            else:
                value = bconsts[j]
                if value is None:
                    value = quote_value(bexprs[j])
            bvals.append(value)
        bargs = tuple(bvals)
        arity = bop.arity
        if arity is not None:
            low, high = arity
            if len(bargs) < low or (high is not None and len(bargs) > high):
                raise ArityError(
                    f"{bop.name} expects {_arity_text(low, high)} arguments, "
                    f"got {len(bargs)}"
                )
        value = bop.proc(machine, store, bargs)
        if machine._default_call_frame:
            return value, cost, (body_env, body)
        return value, cost, None
    return _NO_FUSE


def _fuse_call(machine, store, plan, vals, i, base, parent, steps, limit):
    """Inline-evaluate the run of *simple* subexpressions of a call
    starting at evaluation index *i*, without materializing the
    intermediate push frames the per-step rules would thread through.

    Simple expressions (Var, Quote, Lambda — see ``CallPlan.kinds``)
    complete in one transition that inspects neither the continuation
    nor (beyond a lookup) the environment, so the eval and advance
    steps can be counted without being individually materialized; the
    store effects (the lambda rule's tag allocation) happen in exactly
    the seed order.  Under gen-2, a kind-4 operand — an all-simple
    nested call — is additionally evaluated whole through
    :func:`_nested_value` (``fuse_cost`` transitions, committed only
    when they fit the budget and the speculated operator is a
    non-control primop), and quickened Var operands read their lexical
    address off the frame chain.  Returns the registers
    ``(control, is_value, env, kont, steps)`` at the first point the
    generic loop must resume: a compound subexpression (its push frame
    is then built, content-identical to the seed's), the step budget
    running out, or the completed call (unpermuted, with its call
    continuation, ready for the application step).
    """
    kinds = plan.kinds
    addrs = plan.addrs
    consts = plan.consts
    nested = plan.nested
    pending = plan.pending
    last = len(pending)
    start = i
    fuse_lambda = machine._fuse_lambda
    fuse_nested = machine._fuse_nested
    fuse_beta = machine._fuse_beta
    d_env = machine._default_call_env and machine._default_push_env
    frame_return = machine._frame_return
    quicken = machine._gen2
    closure_fv = machine._closure_env_fv
    bindings = base._bindings
    cells_get = store._cells.get
    while True:
        expr = plan.first if i == 0 else pending[i - 1]
        kind = kinds[i]
        value = _NO_FUSE
        cost = 1
        if steps < limit:
            if kind == 1:  # Var
                name = expr.name
                location = None
                if quicken:
                    addr = addrs[i]
                    if addr is not None:
                        if base._frame_names is addr[2]:
                            location = base._frame_locs[addr[0]]
                        else:
                            location = _quick_location(
                                base, addr[0], addr[1]
                            )
                if location is None:
                    location = bindings.get(name)
                    if location is None:
                        raise UnboundVariableError(
                            f"unbound variable: {name}"
                        )
                value = cells_get(location)
                if value is None:
                    raise UnboundVariableError(
                        f"variable {name} refers to an unmapped location"
                    )
                if value is UNDEFINED:
                    raise UnboundVariableError(
                        f"variable {name} read before initialization"
                    )
            elif kind == 2:  # Quote
                value = consts[i]
                if value is None:  # a string constant: stay fresh
                    value = quote_value(expr)
            elif kind == 3:  # Lambda
                if fuse_lambda:
                    closed = (
                        base.restrict(free_vars(expr)) if closure_fv else base
                    )
                    value = Closure(store.alloc(UNSPECIFIED), expr, closed)
            elif kind == 4:  # all-simple nested call
                inner = nested[i]
                held_src = None
                if (
                    fuse_nested
                    and inner.speculate
                    and (fuse_beta or not inner.beta_only)
                ):
                    fused = _nested_value(
                        machine, store, inner, base, bindings, cells_get,
                        limit - steps,
                    )
                    if fused is _NO_FUSE:
                        inner.speculate = False
                    elif fused is _BETA_ONLY:
                        inner.beta_only = True
                    elif fused is not None:
                        value, cost, held_src = fused
        if value is _NO_FUSE:
            # Hand the expression to the generic loop (compound, an
            # unfusable lambda or nested call, or the batch boundary):
            # materialize the configuration the per-step rules would
            # be in.
            return (
                expr,
                False,
                base if d_env or i == start
                else _saved_env(machine, base, plan, i - 1),
                Push(
                    plan.suffixes[i], tuple(vals), plan.order,
                    base if d_env else _saved_env(machine, base, plan, i),
                    parent, site=plan.site, plan=plan,
                ),
                steps,
            )
        steps += cost
        vals.append(value)
        if steps >= limit:
            # Batch boundary holding the value at frame i.  The seed's
            # environment register there is the one the value was
            # produced in: the frame's saved environment for a simple
            # operand, the *inner* call's last saved environment for a
            # fused nested call (its apply step ran last).
            if kind == 4:
                # A fused closure body (beta) that ran to its own apply
                # step holds that body call's last saved environment;
                # otherwise (primop inner, or the gc-family beta whose
                # final transition is the Return pop restoring the
                # caller environment) the inner call's.
                if held_src is not None:
                    held = (
                        held_src[0] if d_env else _saved_env(
                            machine, held_src[0], held_src[1],
                            len(held_src[1].pending),
                        )
                    )
                else:
                    held = (
                        base if d_env else
                        _saved_env(machine, base, inner, len(inner.pending))
                    )
            elif d_env or i == start:
                held = base
            else:
                held = _saved_env(machine, base, plan, i - 1)
            return (
                value,
                True,
                held,
                Push(
                    plan.suffixes[i], tuple(vals[:-1]), plan.order,
                    base if d_env else _saved_env(machine, base, plan, i),
                    parent, site=plan.site, plan=plan,
                ),
                steps,
            )
        steps += 1  # the advance step (i < last) or the complete step
        if i < last:
            i += 1
            continue
        # Complete: unpermute and form the call.
        if plan.is_identity:
            operator = vals[0]
            args = tuple(vals[1:])
        else:
            original = [None] * len(vals)
            for position, evaluated in zip(plan.order, vals):
                original[position] = evaluated
            operator = original[0]
            args = tuple(original[1:])
        if steps < limit:
            # Fuse the application step too for the common operators,
            # mirroring the generic loop's call-continuation rule (a
            # closure-only apply override still admits the primop case).
            ocls = operator.__class__
            if ocls is Closure and machine._default_apply:
                lam = operator.lam
                params = lam.params
                if len(params) != len(args):
                    raise ArityError(
                        f"procedure expects {len(params)} arguments, "
                        f"got {len(args)}"
                    )
                steps += 1  # the application step
                locations = store.alloc_many(args)
                body_env = operator.env.extend(params, locations)
                if not machine._default_call_frame:
                    caller = (
                        base if d_env
                        else _saved_env(machine, base, plan, last)
                    )
                    if frame_return:
                        parent = Return(caller, parent)
                    else:
                        parent = machine.call_frame(
                            locations, caller, parent
                        )
                return (lam.body, False, body_env, parent, steps)
            if (
                ocls is Primop
                and machine._primop_apply
                and not operator.controls
            ):
                arity = operator.arity
                if arity is not None:
                    low, high = arity
                    if len(args) < low or (
                        high is not None and len(args) > high
                    ):
                        raise ArityError(
                            f"{operator.name} expects "
                            f"{_arity_text(low, high)} arguments, "
                            f"got {len(args)}"
                        )
                steps += 1  # the application step
                return (
                    operator.proc(machine, store, args),
                    True,
                    base if d_env else _saved_env(machine, base, plan, last),
                    parent,
                    steps,
                )
        # Escapes, control primops, overridden application (Bigloo),
        # errors, or the batch boundary: the call continuation is
        # materialized and the generic loop applies it.
        return (
            operator,
            True,
            base if d_env else _saved_env(machine, base, plan, last),
            CallK(args, parent, site=plan.site),
            steps,
        )


class Machine:
    """The properly tail recursive reference implementation I_tail."""

    __slots__ = (
        "policy",
        "_default_closure_env",
        "_default_select_env",
        "_default_assign_env",
        "_default_call_env",
        "_default_push_env",
        "_default_call_frame",
        "_default_apply",
        "_call_env_fv",
        "_call_env_drop",
        "_push_env_fv",
        "_push_env_drop",
        "_closure_env_fv",
        "_fusable",
        "_fuse_lambda",
        "_gen2",
        "_select_env_fv",
        "_fuse_nested",
        "_fuse_if",
        "_fuse_if_call",
        "_fuse_beta",
        "_beta_extra",
        "_frame_return",
        "_plan0",
        "_primop_apply",
        "trace",
    )

    name = "tail"

    #: Declared shape of the ``call_env`` / ``push_env`` overrides, so
    #: the fused run loop can specialize them: ``"identity"`` (the
    #: I_tail default), ``"restrict-fv"`` (restrict to the free
    #: variables of the pending expressions — I_sfs; the loop then
    #: reads the interned set off the call plan instead of re-deriving
    #: it), ``"drop-empty"`` (the environment is dropped exactly when
    #: nothing is pending — I_evlis), or ``"custom"`` (always call the
    #: hook).  A declaration is honoured only when it appears in the
    #: same class body as the override it describes (checked against
    #: the MRO), so a subclass overriding a hook without re-declaring
    #: its kind safely degrades to ``"custom"``.
    call_env_kind = "identity"
    push_env_kind = "identity"

    #: Declared shape of the ``closure_env`` override, same trust model
    #: as above: ``"identity"`` (I_tail), ``"restrict-free-vars"``
    #: (close over the lambda's free variables — I_free, I_sfs), or
    #: ``"custom"``.
    closure_env_kind = "identity"

    #: Declared shape of the ``select_env`` override:
    #: ``"identity"`` (I_tail), ``"restrict-branch-fv"`` (restrict to
    #: the branches' free variables — I_sfs; the gen-2 if fusion then
    #: reproduces the hook from the interned branch set), or
    #: ``"custom"`` (if fusion disabled).
    select_env_kind = "identity"

    #: Declared shape of an ``apply_procedure`` override, same trust
    #: model as the environment kinds: ``"closure-only"`` promises the
    #: override special-cases closure operators only and defers every
    #: other operator (primops in particular) to the base rule — the
    #: Bigloo-style machine — so primop-operator superinstructions
    #: (fused nested calls and if tests) remain exact even though
    #: closure application is custom.  Anything else disables them.
    apply_kind = "default"

    #: Whether the semantics includes the garbage collection rule of
    #: Figure 5.  I_stack (a pure deletion strategy, section 5) sets
    #: this False: storage is reclaimed only by frame deletion.
    uses_gc_rule = True

    def __init__(self, policy: Optional[Policy] = None, gen2: bool = True):
        self.policy = policy if policy is not None else LeftToRight()
        # A hook still at its I_tail default is the identity on the
        # environment (or the caller's kappa): the dispatch handlers
        # skip the call entirely then.  Computed once per instance so
        # subclass overrides — including overrides added by further
        # subclasses — are always honoured.
        cls = type(self)
        self._default_closure_env = cls.closure_env is Machine.closure_env
        self._default_select_env = cls.select_env is Machine.select_env
        self._default_assign_env = cls.assign_env is Machine.assign_env
        self._default_call_env = cls.call_env is Machine.call_env
        self._default_push_env = cls.push_env is Machine.push_env
        self._default_call_frame = cls.call_frame is Machine.call_frame
        self._default_apply = (
            cls.apply_procedure is Machine.apply_procedure
            and cls._apply_closure is Machine._apply_closure
        )
        call_kind = _hook_kind(cls, "call_env", "call_env_kind")
        push_kind = _hook_kind(cls, "push_env", "push_env_kind")
        closure_kind = _hook_kind(cls, "closure_env", "closure_env_kind")
        self._call_env_fv = call_kind == "restrict-fv"
        self._call_env_drop = call_kind == "drop-empty"
        self._push_env_fv = push_kind == "restrict-fv"
        self._push_env_drop = push_kind == "drop-empty"
        self._closure_env_fv = closure_kind == "restrict-free-vars"
        # Argument fusion (see _fuse_call) needs both saved-environment
        # hooks to have a declared kind; a lambda operand may be fused
        # only when its captured environment is reconstructible from
        # the unrestricted base environment.
        self._fusable = (
            self._default_call_env or self._call_env_fv or self._call_env_drop
        ) and (
            self._default_push_env or self._push_env_fv or self._push_env_drop
        )
        self._fuse_lambda = self._closure_env_fv or (
            self._default_closure_env
            and not (self._call_env_fv or self._push_env_fv)
        )
        # Gen-2 superinstructions (DESIGN.md §7).  Nested-call and
        # fused-if-test speculation skip the seed's policy consultation
        # at the inner call reduction, so they are sound only under the
        # stateless identity policy; the if fusion additionally needs
        # the select hook reconstructible (identity, or the declared
        # I_sfs branch restriction).
        select_kind = _hook_kind(cls, "select_env", "select_env_kind")
        self._select_env_fv = select_kind == "restrict-branch-fv"
        self._gen2 = gen2
        lefttoright = type(self.policy) is LeftToRight
        # Primop-operator superinstructions stay exact under a custom
        # closure application as long as non-closure operators take the
        # base rule (the declared "closure-only" apply kind): the fused
        # transitions never apply a closure then — _fuse_beta below
        # additionally requires the full default apply.
        primop_apply = self._default_apply or (
            _hook_kind(cls, "apply_procedure", "apply_kind")
            == "closure-only"
        )
        self._primop_apply = primop_apply
        self._fuse_nested = (
            gen2 and lefttoright and primop_apply and self._fusable
        )
        self._fuse_if = gen2 and (
            self._default_select_env or self._select_env_fv
        )
        self._fuse_if_call = (
            self._fuse_if and lefttoright and primop_apply
        )
        # The beta superinstruction additionally applies a closure
        # operator whose body is an all-simple primop call, so the
        # skipped call frame must be reconstructible: the identity
        # (I_tail family) or the declared I_gc Return, whose pop is one
        # extra transition restoring the caller environment.  The
        # I_stack ReturnStack pop deletes store cells — observable — so
        # its declared kind declines.
        frame_kind = _hook_kind(cls, "call_frame", "call_frame_kind")
        self._fuse_beta = (
            self._fuse_nested
            and self._default_apply
            and (self._default_call_frame or frame_kind == "return")
        )
        self._beta_extra = 0 if self._default_call_frame else 1
        # The declared I_gc frame lets the fused apply build the Return
        # directly instead of calling the hook.
        self._frame_return = (
            not self._default_call_frame and frame_kind == "return"
        )
        self._plan0 = gen2 and lefttoright
        #: Telemetry sink (a ``repro.telemetry.bus.TraceBus``) or None.
        #: The only cost when unset is one ``is None`` check per batch.
        self.trace = None

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def inject(
        self,
        program: Expr,
        argument: Optional[Expr] = None,
        store: Optional[Store] = None,
        global_env: Optional[Environment] = None,
        trim_globals: bool = True,
    ) -> State:
        """Build the initial configuration.

        With an *argument*, this is Definition 23's
        ``((P D), rho_0, halt, sigma_0)``; without one, the program
        expression itself is evaluated.  ``trim_globals`` restricts
        rho_0 to the free variables of the program and argument (a
        per-program constant change to S_X; pass False for the full
        fixed rho_0 of section 12).

        Injection runs the static pre-pass over the injected
        expression, interning free-variable sets, call plans, and
        constant values once so the step handlers only do lookups.
        """
        if store is None:
            store = Store()
        if global_env is None:
            names = None
            if trim_globals:
                names = set(free_vars(program))
                if argument is not None:
                    names |= free_vars(argument)
            global_env = make_initial_environment(store, names)
        expr = Call((program, argument)) if argument is not None else program
        annotate(expr)
        self.policy.reset()
        return State(expr, False, global_env, Halt(), store)

    # ------------------------------------------------------------------
    # The transition function
    # ------------------------------------------------------------------

    def step(self, state: State) -> Configuration:
        """One transition of Figure 5 (plus variant rules)."""
        control = state.control
        if state.is_value:
            kont = state.kont
            handler = _VALUE_DISPATCH.get(kont.__class__)
            if handler is None:
                handler = _resolve_value_handler(kont)
            return handler(self, state, control, kont)
        handler = _EXPR_DISPATCH.get(control.__class__)
        if handler is None:
            handler = _resolve_expr_handler(control)
        return handler(self, state, control)

    def _step_expr(self, state: State) -> Configuration:
        expr = state.control
        handler = _EXPR_DISPATCH.get(expr.__class__)
        if handler is None:
            handler = _resolve_expr_handler(expr)
        return handler(self, state, expr)

    def _step_value(self, state: State) -> Configuration:
        kont = state.kont
        handler = _VALUE_DISPATCH.get(kont.__class__)
        if handler is None:
            handler = _resolve_value_handler(kont)
        return handler(self, state, state.control, kont)

    # ------------------------------------------------------------------
    # The fused run loop
    # ------------------------------------------------------------------

    def run_steps(self, state: State, limit: int):
        """Execute up to *limit* transitions of :meth:`step` in one
        Python frame; return ``(configuration, steps_taken)``.

        The registers (control, value flag, environment, continuation)
        live in local variables, so intermediate :class:`State` objects
        are never constructed — one is materialized only when the batch
        is exhausted, the computation halts, or a rare rule (an escape,
        a control primop, a variant-overridden application, an error
        path) delegates to :meth:`step`.  Every transition taken, every
        store effect, and the step count are *identical* to ``limit``
        consecutive ``step`` calls — this is batching, not a different
        semantics — which the differential suite checks by holding the
        fused driver equal to the preserved seed stepper run-for-run.

        Drivers that must observe every configuration (the space meter,
        the lockstep tests) call :meth:`step` directly instead.
        """
        if self.trace is not None:
            return self._traced_run_steps(state, limit)
        control = state.control
        is_value = state.is_value
        env = state.env
        kont = state.kont
        store = state.store
        if limit <= 0:
            return state, 0
        # Hot globals and flags as locals (CPython: LOAD_FAST).
        permutation = self.policy.permutation
        cells_get = store._cells.get
        d_closure = self._default_closure_env
        d_select = self._default_select_env
        d_assign = self._default_assign_env
        d_call = self._default_call_env
        d_push = self._default_push_env
        d_frame = self._default_call_frame
        d_apply = self._default_apply
        call_fv = self._call_env_fv
        call_drop = self._call_env_drop
        push_fv = self._push_env_fv
        push_drop = self._push_env_drop
        fuse = self._fusable
        gen2 = self._gen2
        fuse_if = self._fuse_if
        fuse_if_call = self._fuse_if_call
        fuse_beta = self._fuse_beta
        var_addrs_get = _VAR_ADDRS.get
        if_tests_get = _IF_TESTS.get
        plan0 = self._plan0
        plan0_get = _IDENTITY_PLANS.get
        steps = 0
        while steps < limit:
            steps += 1
            if is_value:
                kcls = kont.__class__
                if kcls is Push:
                    pending = kont.pending
                    if pending:
                        plan = kont.plan
                        done = kont.done
                        if (
                            fuse
                            and plan is not None
                            and plan.suffixes[len(done)] is pending
                        ):
                            # Fuse the advance with the run of simple
                            # subexpressions that follows it.
                            vals = list(done)
                            vals.append(control)
                            control, is_value, env, kont, steps = _fuse_call(
                                self, store, plan, vals, len(vals),
                                kont.env, kont.parent, steps, limit,
                            )
                            continue
                        done = done + (control,)
                        planned = (
                            plan is not None
                            and plan.suffixes[len(done) - 1] is pending
                        )
                        rest = (
                            plan.suffixes[len(done)] if planned
                            else pending[1:]
                        )
                        if d_push:
                            saved = kont.env
                        elif push_fv and planned:
                            saved = kont.env.restrict(
                                plan.suffix_fvs[len(done)]
                            )
                        elif push_drop:
                            saved = kont.env if rest else EMPTY_ENV
                        else:
                            saved = self.push_env(kont.env, rest)
                        control = pending[0]
                        is_value = False
                        env = kont.env
                        kont = Push(
                            rest, done, kont.order, saved, kont.parent,
                            site=kont.site, plan=plan,
                        )
                        continue
                    values_in_order = kont.done + (control,)
                    plan = kont.plan
                    if plan is not None and plan.is_identity:
                        control = values_in_order[0]
                        args = values_in_order[1:]
                    else:
                        original: list = [None] * len(values_in_order)
                        for position, evaluated in zip(
                            kont.order, values_in_order
                        ):
                            original[position] = evaluated
                        control = original[0]
                        args = tuple(original[1:])
                    env = kont.env
                    kont = CallK(args, kont.parent, site=kont.site)
                    continue
                if kcls is CallK:
                    args = kont.args
                    parent = kont.parent
                    if d_apply:
                        ocls = control.__class__
                        if ocls is Closure:
                            lam = control.lam
                            params = lam.params
                            if len(params) != len(args):
                                raise ArityError(
                                    f"procedure expects {len(params)} "
                                    f"arguments, got {len(args)}"
                                )
                            locations = store.alloc_many(args)
                            body_env = control.env.extend(params, locations)
                            if not d_frame:
                                parent = self.call_frame(
                                    locations, env, parent
                                )
                            control = lam.body
                            is_value = False
                            env = body_env
                            kont = parent
                            continue
                        if ocls is Primop and not control.controls:
                            arity = control.arity
                            if arity is not None:
                                low, high = arity
                                if len(args) < low or (
                                    high is not None and len(args) > high
                                ):
                                    raise ArityError(
                                        f"{control.name} expects "
                                        f"{_arity_text(low, high)} arguments, "
                                        f"got {len(args)}"
                                    )
                            control = control.proc(self, store, args)
                            kont = parent
                            continue
                    # Escapes, control primops, overridden application
                    # (Bigloo), and the not-a-procedure error: take the
                    # exact step-path.
                    configuration = self.apply_procedure(
                        State(control, True, env, kont, store),
                        control,
                        args,
                        parent,
                    )
                    control = configuration.control
                    is_value = configuration.is_value
                    env = configuration.env
                    kont = configuration.kont
                    continue
                if kcls is Select:
                    control = (
                        kont.consequent if is_true(control)
                        else kont.alternative
                    )
                    is_value = False
                    env = kont.env
                    kont = kont.parent
                    continue
                if kcls is Return:
                    env = kont.env
                    kont = kont.parent
                    continue
                if kcls is Halt:
                    return Final(control, store), steps
                if kcls is Assign:
                    location = kont.env.lookup(kont.name)
                    if location is None or location not in store:
                        raise UnboundVariableError(
                            f"assignment to unbound variable: {kont.name}"
                        )
                    store.write(location, control)
                    control = UNSPECIFIED
                    env = kont.env
                    kont = kont.parent
                    continue
                # ReturnStack, TaggedReturn, unknown: the exact step-path.
                configuration = self._step_value(
                    State(control, True, env, kont, store)
                )
                if configuration.is_final:
                    return configuration, steps
                control = configuration.control
                is_value = configuration.is_value
                env = configuration.env
                kont = configuration.kont
                continue
            cls = control.__class__
            if cls is Var:
                name = control.name
                location = None
                if gen2:
                    addr = var_addrs_get(control)
                    if addr is not None:
                        if env._frame_names is addr[2]:
                            location = env._frame_locs[addr[0]]
                        else:
                            location = _quick_location(
                                env, addr[0], addr[1]
                            )
                if location is None:
                    location = env._bindings.get(name)
                    if location is None:
                        raise UnboundVariableError(
                            f"unbound variable: {name}"
                        )
                value = cells_get(location)
                if value is None:
                    raise UnboundVariableError(
                        f"variable {name} refers to an unmapped location"
                    )
                if value is UNDEFINED:
                    raise UnboundVariableError(
                        f"variable {name} read before initialization"
                    )
                control = value
                is_value = True
                continue
            if cls is Call:
                # Under the stateless identity policy a site's plan is
                # permutation-independent: one dict probe replaces the
                # policy consult + memo call after the first visit.
                plan = plan0_get(control) if plan0 else None
                if plan is None:
                    order = permutation(len(control.exprs))
                    plan = call_plan(control, order)
                if fuse:
                    control, is_value, env, kont, steps = _fuse_call(
                        self, store, plan, [], 0, env, kont, steps, limit,
                    )
                    continue
                pending = plan.pending
                if d_call:
                    saved = env
                elif call_fv:
                    saved = env.restrict(plan.suffix_fvs[0])
                elif call_drop:
                    saved = env if pending else EMPTY_ENV
                else:
                    saved = self.call_env(env, pending)
                kont = Push(
                    pending, (), plan.order, saved, kont,
                    site=control, plan=plan,
                )
                control = plan.first
                continue
            if cls is Quote:
                control = quote_value(control)
                is_value = True
                continue
            if cls is If:
                test = control.test
                if fuse_if:
                    # Fuse the test evaluation and the select step for
                    # the measured shapes, never materializing the
                    # transient select frame: a simple test is +2
                    # transitions, an all-simple nested-call test is
                    # its fuse_cost +1 (committed only when the budget
                    # fits and the speculated operator is a primop).
                    tcls = test.__class__
                    value = _NO_FUSE
                    cost = 2
                    if tcls is Var:
                        if steps + 2 <= limit:
                            name = test.name
                            location = None
                            addr = var_addrs_get(test)
                            if addr is not None:
                                if env._frame_names is addr[2]:
                                    location = env._frame_locs[addr[0]]
                                else:
                                    location = _quick_location(
                                        env, addr[0], addr[1]
                                    )
                            if location is None:
                                location = env._bindings.get(name)
                                if location is None:
                                    raise UnboundVariableError(
                                        f"unbound variable: {name}"
                                    )
                            value = cells_get(location)
                            if value is None:
                                raise UnboundVariableError(
                                    f"variable {name} refers to an "
                                    f"unmapped location"
                                )
                            if value is UNDEFINED:
                                raise UnboundVariableError(
                                    f"variable {name} read before "
                                    f"initialization"
                                )
                    elif tcls is Quote:
                        if steps + 2 <= limit:
                            value = quote_value(test)
                    elif fuse_if_call and tcls is Call:
                        plan = if_tests_get(control)
                        if (
                            plan is not None
                            and plan.speculate
                            and (fuse_beta or not plan.beta_only)
                        ):
                            fused = _nested_value(
                                self, store, plan, env, env._bindings,
                                cells_get, limit - steps - 1,
                            )
                            if fused is _NO_FUSE:
                                plan.speculate = False
                            elif fused is _BETA_ONLY:
                                plan.beta_only = True
                            elif fused is not None:
                                # The select pop restores the saved
                                # environment, so the fused call's held
                                # environment never becomes observable.
                                value, cost, _held = fused
                                cost += 1
                    if value is not _NO_FUSE:
                        steps += cost
                        if not d_select:
                            env = env.restrict(
                                branch_free_vars(
                                    control.consequent, control.alternative
                                )
                            )
                        control = (
                            control.consequent if is_true(value)
                            else control.alternative
                        )
                        continue
                saved = (
                    env if d_select
                    else self.select_env(
                        env, control.consequent, control.alternative
                    )
                )
                kont = Select(
                    control.consequent, control.alternative, saved, kont
                )
                control = test
                continue
            if cls is Lambda:
                closed = env if d_closure else self.closure_env(control, env)
                tag = store.alloc(UNSPECIFIED)
                control = Closure(tag, control, closed)
                is_value = True
                continue
            if cls is SetBang:
                saved = env if d_assign else self.assign_env(env, control.name)
                kont = Assign(control.name, saved, kont)
                control = control.expr
                continue
            # Unknown expression class: the exact step-path (MRO
            # fallback or the seed's StuckError).
            configuration = self._step_expr(
                State(control, False, env, kont, store)
            )
            control = configuration.control
            is_value = configuration.is_value
            env = configuration.env
            kont = configuration.kont
        return State(control, is_value, env, kont, store), steps

    def _traced_run_steps(self, state: State, limit: int):
        """The run driver used while a trace bus is attached: every
        transition goes through :meth:`step` (the exact per-step path)
        and is published before it is taken.  Fusion is pure batching,
        so bypassing it here changes no transition — it only makes each
        one observable."""
        bus = self.trace
        step = self.step
        steps = 0
        while steps < limit:
            bus.emit_step_state(state)
            configuration = step(state)
            steps += 1
            if configuration.is_final:
                return configuration, steps
            state = configuration
        return state, steps

    # ------------------------------------------------------------------
    # Procedure application
    # ------------------------------------------------------------------

    def apply_procedure(
        self, state: State, operator: Value, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        """The call continuation rule, dispatched on the operator."""
        if isinstance(operator, Closure):
            return self._apply_closure(state, operator, args, kont)
        if isinstance(operator, Primop):
            return self._apply_primop(state, operator, args, kont)
        if isinstance(operator, Escape):
            if len(args) != 1:
                raise ArityError(
                    f"escape procedure expects 1 argument, got {len(args)}"
                )
            return State(args[0], True, EMPTY_ENV, operator.kont, state.store)
        raise NotAProcedureError(f"not a procedure: {operator!r}")

    def _apply_closure(
        self, state: State, closure: Closure, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        lam = closure.lam
        params = lam.params
        if len(params) != len(args):
            raise ArityError(
                f"procedure expects {len(params)} arguments, got {len(args)}"
            )
        locations = state.store.alloc_many(args)
        body_env = closure.env.extend(params, locations)
        if self._default_call_frame:
            body_kont = kont
        else:
            body_kont = self.call_frame(locations, state.env, kont)
        return State(lam.body, False, body_env, body_kont, state.store)

    def _apply_primop(
        self, state: State, primop: Primop, args: Tuple[Value, ...], kont: Kont
    ) -> Configuration:
        if primop.arity is not None:
            low, high = primop.arity
            if len(args) < low or (high is not None and len(args) > high):
                raise ArityError(
                    f"{primop.name} expects {_arity_text(low, high)} arguments, "
                    f"got {len(args)}"
                )
        if primop.controls:
            return primop.proc(self, state, args, kont)
        result = primop.proc(self, state.store, args)
        return State(result, True, state.env, kont, state.store)

    # ------------------------------------------------------------------
    # Variant hooks (I_tail defaults)
    # ------------------------------------------------------------------

    def closure_env(self, lam: Lambda, env: Environment) -> Environment:
        """Environment captured by a closure (I_tail: all of scope)."""
        return env

    def select_env(self, env: Environment, consequent: Expr, alternative: Expr):
        """Environment saved in a select continuation."""
        return env

    def assign_env(self, env: Environment, name: str) -> Environment:
        """Environment saved in an assign continuation."""
        return env

    def call_env(self, env: Environment, pending: Tuple[Expr, ...]) -> Environment:
        """Environment saved in the push continuation at call reduction."""
        return env

    def push_env(self, env: Environment, rest: Tuple[Expr, ...]) -> Environment:
        """Environment saved when the push continuation advances."""
        return env

    def call_frame(
        self,
        frame_locations: Tuple[Location, ...],
        caller_env: Environment,
        kont: Kont,
    ) -> Kont:
        """Continuation for a closure body (I_tail: the caller's kappa
        unchanged — every call is a goto)."""
        return kont

    def compact(self, state: State) -> State:
        """Optional continuation compaction, run by the meter alongside
        the GC rule.  The base machines do nothing; Baker's MTA variant
        collapses runs of return frames here."""
        return state

    # ------------------------------------------------------------------
    # I_stack frame deletion (used only by variants with ReturnStack)
    # ------------------------------------------------------------------

    def _delete_frame(self, state: State, value: Value, kont: ReturnStack) -> None:
        """Delete the largest subset of the frame that creates no
        dangling pointer: frame locations unreachable from the
        post-return configuration."""
        store = state.store
        candidates = [loc for loc in kont.frame if loc in store]
        if not candidates:
            return
        live = reachable_locations(store, (value,), kont.env, kont.parent)
        deletable = [loc for loc in candidates if loc not in live]
        if deletable:
            store.delete_many(deletable)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} policy={self.policy!r}>"


# ---------------------------------------------------------------------------
# Expression handlers (the left column of Figure 5), one per class.
# ---------------------------------------------------------------------------


def _expr_quote(machine: Machine, state: State, expr: Quote) -> State:
    return State(quote_value(expr), True, state.env, state.kont, state.store)


def _expr_var(machine: Machine, state: State, expr: Var) -> State:
    env = state.env
    location = env.lookup(expr.name)
    if location is None:
        raise UnboundVariableError(f"unbound variable: {expr.name}")
    value = state.store.get(location)
    if value is None:
        raise UnboundVariableError(
            f"variable {expr.name} refers to an unmapped location"
        )
    if value is UNDEFINED:
        raise UnboundVariableError(
            f"variable {expr.name} read before initialization"
        )
    return State(value, True, env, state.kont, state.store)


def _expr_lambda(machine: Machine, state: State, expr: Lambda) -> State:
    env = state.env
    if machine._default_closure_env:
        closed = env
    else:
        closed = machine.closure_env(expr, env)
    tag = state.store.alloc(UNSPECIFIED)
    return State(Closure(tag, expr, closed), True, env, state.kont, state.store)


def _expr_if(machine: Machine, state: State, expr: If) -> State:
    env = state.env
    if machine._default_select_env:
        saved = env
    else:
        saved = machine.select_env(env, expr.consequent, expr.alternative)
    kont = Select(expr.consequent, expr.alternative, saved, state.kont)
    return State(expr.test, False, env, kont, state.store)


def _expr_set(machine: Machine, state: State, expr: SetBang) -> State:
    env = state.env
    if machine._default_assign_env:
        saved = env
    else:
        saved = machine.assign_env(env, expr.name)
    kont = Assign(expr.name, saved, state.kont)
    return State(expr.expr, False, env, kont, state.store)


def _expr_call(machine: Machine, state: State, expr: Call) -> State:
    order = machine.policy.permutation(len(expr.exprs))
    plan = call_plan(expr, order)  # validates the permutation once
    env = state.env
    pending = plan.pending
    if machine._default_call_env:
        saved = env
    else:
        saved = machine.call_env(env, pending)
    kont = Push(pending, (), plan.order, saved, state.kont, site=expr, plan=plan)
    return State(plan.first, False, env, kont, state.store)


_EXPR_DISPATCH = {
    Quote: _expr_quote,
    Var: _expr_var,
    Lambda: _expr_lambda,
    If: _expr_if,
    SetBang: _expr_set,
    Call: _expr_call,
}


def _resolve_expr_handler(expr):
    """MRO fallback for Expr subclasses, cached; stuck otherwise."""
    for base in expr.__class__.__mro__[1:]:
        handler = _EXPR_DISPATCH.get(base)
        if handler is not None:
            _EXPR_DISPATCH[expr.__class__] = handler
            return handler
    raise StuckError(f"not a Core Scheme expression: {expr!r}")


# ---------------------------------------------------------------------------
# Value handlers (the right column of Figure 5), one per continuation.
# ---------------------------------------------------------------------------


def _value_halt(machine: Machine, state: State, value, kont: Halt):
    return Final(value, state.store)


def _value_select(machine: Machine, state: State, value, kont: Select) -> State:
    branch = kont.consequent if is_true(value) else kont.alternative
    return State(branch, False, kont.env, kont.parent, state.store)


def _value_assign(machine: Machine, state: State, value, kont: Assign) -> State:
    location = kont.env.lookup(kont.name)
    if location is None or location not in state.store:
        raise UnboundVariableError(
            f"assignment to unbound variable: {kont.name}"
        )
    state.store.write(location, value)
    return State(UNSPECIFIED, True, kont.env, kont.parent, state.store)


def _value_push(machine: Machine, state: State, value, kont: Push):
    pending = kont.pending
    if pending:
        plan = kont.plan
        done = kont.done
        if plan is not None and plan.suffixes[len(done)] is pending:
            rest = plan.suffixes[len(done) + 1]
        else:  # hand-built frame: fall back to slicing
            rest = pending[1:]
        if machine._default_push_env:
            saved = kont.env
        else:
            saved = machine.push_env(kont.env, rest)
        new_kont = Push(
            rest, done + (value,), kont.order, saved, kont.parent,
            site=kont.site, plan=plan,
        )
        return State(pending[0], False, kont.env, new_kont, state.store)
    # All subexpressions evaluated: unpermute and form the call.
    values_in_order = kont.done + (value,)
    plan = kont.plan
    if plan is not None and plan.is_identity:
        operator = values_in_order[0]
        args = values_in_order[1:]
    else:
        original: list = [None] * len(values_in_order)
        for position, evaluated in zip(kont.order, values_in_order):
            original[position] = evaluated
        operator = original[0]
        args = tuple(original[1:])
    return State(
        operator, True, kont.env,
        CallK(args, kont.parent, site=kont.site), state.store,
    )


def _value_call(machine: Machine, state: State, value, kont: CallK):
    return machine.apply_procedure(state, value, kont.args, kont.parent)


def _value_return(machine: Machine, state: State, value, kont: Return) -> State:
    return State(value, True, kont.env, kont.parent, state.store)


def _value_return_stack(
    machine: Machine, state: State, value, kont: ReturnStack
) -> State:
    machine._delete_frame(state, value, kont)
    return State(value, True, kont.env, kont.parent, state.store)


_VALUE_DISPATCH = {
    Halt: _value_halt,
    Select: _value_select,
    Assign: _value_assign,
    Push: _value_push,
    CallK: _value_call,
    Return: _value_return,
    ReturnStack: _value_return_stack,
}


def _resolve_value_handler(kont):
    """MRO fallback for Kont subclasses (e.g. the Bigloo TaggedReturn),
    cached under the concrete class; stuck otherwise."""
    for base in kont.__class__.__mro__[1:]:
        handler = _VALUE_DISPATCH.get(base)
        if handler is not None:
            _VALUE_DISPATCH[kont.__class__] = handler
            return handler
    raise StuckError(f"unknown continuation: {kont!r}")


def constant_value(constant) -> Value:
    """Map a quoted constant datum to a runtime value."""
    if isinstance(constant, bool):
        return TRUE if constant else FALSE
    if isinstance(constant, int):
        return Num(constant)
    if isinstance(constant, Symbol):
        return Sym(constant.name)
    if isinstance(constant, CharDatum):
        return CharValue(constant.value)
    if isinstance(constant, str):
        return Str(constant)
    if constant == ():
        return NIL
    raise StuckError(f"not an atomic constant: {constant!r}")


def _arity_text(low: int, high: Optional[int]) -> str:
    if high is None:
        return f"at least {low}"
    if low == high:
        return str(low)
    return f"{low} to {high}"


# The prepass imports constant_value from this module (lazily, for the
# quote-value cache); importing it here at the bottom keeps a single
# import-time ordering for both directions of the knot.
from ..compiler.prepass import (  # noqa: E402
    _IDENTITY_PLANS,
    _IF_TESTS,
    _VAR_ADDRS,
    annotate,
    body_fuse_plan,
    call_plan,
    if_test_plan,
    quote_value,
)
