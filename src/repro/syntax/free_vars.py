"""Free-variable computation FV(E) for Core Scheme.

Used by the I_free and I_sfs reference implementations (section 10),
whose rules restrict environments to the free variables of the
expressions that remain to be evaluated.

Every function here interns its result: identical queries return the
*same* frozenset object (nodes are immutable and compare by identity,
tuples of nodes hash by those identities).  The stepper's pre-pass
(``repro.compiler.prepass``) warms these caches once per program so
the per-step restriction rules of I_free/I_sfs reduce to cache hits,
and the interned sets carry their cached frozenset hashes into the
memoized :meth:`Environment.restrict`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import FrozenSet, Iterable, Tuple

from .ast import Call, Expr, If, Lambda, Quote, SetBang, Var


@lru_cache(maxsize=None)
def free_vars(expr: Expr) -> FrozenSet[str]:
    """Return FV(expr) as a frozen set of identifier names.

    The result is cached per AST node (nodes are immutable and compare
    by identity), so the I_sfs machine pays the traversal only once per
    program point.
    """
    if isinstance(expr, Quote):
        return frozenset()
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, Lambda):
        return free_vars(expr.body) - frozenset(expr.params)
    if isinstance(expr, If):
        return (
            free_vars(expr.test)
            | free_vars(expr.consequent)
            | free_vars(expr.alternative)
        )
    if isinstance(expr, SetBang):
        return free_vars(expr.expr) | frozenset((expr.name,))
    if isinstance(expr, Call):
        return free_vars_of_all(expr.exprs)
    raise TypeError(f"not a Core Scheme expression: {expr!r}")


@lru_cache(maxsize=None)
def _free_vars_of_tuple(exprs: Tuple[Expr, ...]) -> FrozenSet[str]:
    result: FrozenSet[str] = frozenset()
    for expr in exprs:
        result |= free_vars(expr)
    return result


def free_vars_of_all(exprs: Iterable[Expr]) -> FrozenSet[str]:
    """Union of FV over several expressions (e.g. the pending operands
    of a push continuation), interned per expression tuple."""
    if type(exprs) is not tuple:
        exprs = tuple(exprs)
    return _free_vars_of_tuple(exprs)


@lru_cache(maxsize=None)
def branch_free_vars(consequent: Expr, alternative: Expr) -> FrozenSet[str]:
    """FV(consequent) | FV(alternative), interned per branch pair —
    the name set I_sfs's select rule restricts to."""
    return free_vars(consequent) | free_vars(alternative)


@lru_cache(maxsize=None)
def name_set(name: str) -> FrozenSet[str]:
    """The singleton {name}, interned — I_sfs's assign restriction."""
    return frozenset((name,))
