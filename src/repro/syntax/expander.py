"""Macro expander: full-Scheme surface syntax -> Core Scheme.

Section 2 of the paper: "The external syntax of full Scheme can be
converted into this internal syntax by expanding macros and by
replacing vector, string, and list constants by references to constant
storage."  Section 12 instead *forbids* compound constants and notes
they can be replaced by calls to the standard library procedures that
allocate fresh structure; this expander follows section 12 and rewrites
``(quote (a b))`` into ``(list 'a 'b)`` and ``#(1 2)`` into
``(vector 1 2)``.

Derived forms handled: ``let`` (incl. named let), ``let*``, ``letrec``,
``letrec*``, ``begin``, ``cond`` (incl. ``else`` and ``=>``), ``case``,
``and``, ``or``, ``when``, ``unless``, ``do``, and ``define`` (top
level and internal).  Keywords are reserved words: they cannot be
shadowed by local bindings.

``begin`` and ``letrec`` expand without any UNDEFINED literal::

    (begin a b ...)       => ((lambda (%t) (begin b ...)) a)
    (letrec ((x e)) body) => (let ((x '0)) (set! x e) body)

Fresh temporaries are named ``%t0``, ``%t1``, ...; the ``%`` prefix is
reserved for the expander.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..reader.datum import Char, Datum, Symbol, VectorDatum, datum_to_string
from ..reader.parser import read_all
from .ast import Call, Expr, If, Lambda, Quote, SetBang, Var


class ExpandError(SyntaxError):
    """Raised when a surface form cannot be expanded to Core Scheme."""


_KEYWORDS = frozenset(
    [
        "quote",
        "lambda",
        "if",
        "set!",
        "begin",
        "let",
        "let*",
        "letrec",
        "letrec*",
        "cond",
        "case",
        "and",
        "or",
        "when",
        "unless",
        "do",
        "define",
        "else",
        "=>",
        "quasiquote",
        "unquote",
        "unquote-splicing",
    ]
)

_QUOTE = Symbol("quote")
_DEFINE = Symbol("define")
_ELSE = Symbol("else")
_ARROW = Symbol("=>")


def _is_form(datum: Datum, keyword: str) -> bool:
    return (
        isinstance(datum, tuple)
        and len(datum) > 0
        and isinstance(datum[0], Symbol)
        and datum[0].name == keyword
    )


class Expander:
    """Expands datum trees into Core Scheme ASTs.

    An Expander instance owns a gensym counter, so temporaries are
    unique within every program it expands.
    """

    def __init__(self):
        self._gensym_counter = 0

    # -- public API --------------------------------------------------------

    def expand(self, datum: Datum) -> Expr:
        """Expand a single expression datum to Core Scheme."""
        if isinstance(datum, (bool, int, str, Char)):
            return Quote(datum)
        if isinstance(datum, VectorDatum):
            return self._expand_vector_constant(datum)
        if isinstance(datum, Symbol):
            if datum.name in _KEYWORDS:
                raise ExpandError(f"keyword used as a variable: {datum.name}")
            return Var(datum.name)
        if isinstance(datum, tuple):
            return self._expand_compound(datum)
        raise ExpandError(f"cannot expand datum: {datum!r}")

    def expand_body(self, forms: Sequence[Datum]) -> Expr:
        """Expand a lambda/let body: internal defines, implicit begin."""
        if not forms:
            raise ExpandError("empty body")
        defines: List[Tuple[Symbol, Datum]] = []
        index = 0
        while index < len(forms) and _is_form(forms[index], "define"):
            defines.append(self._parse_define(forms[index]))
            index += 1
        rest = forms[index:]
        if not rest:
            raise ExpandError("body consists only of definitions")
        if defines:
            bindings = tuple((name, expr) for name, expr in defines)
            return self._expand_letrec(bindings, rest)
        return self._expand_begin(rest)

    def expand_program(self, source: Union[str, Sequence[Datum]]) -> Expr:
        """Expand a whole program: a sequence of top-level definitions
        and expressions.

        When the program ends with definitions only, the value of the
        program is the last defined variable — matching the paper's
        convention of writing each program as a procedure definition
        (``(define (f n) ...)`` denotes the program ``f``).
        """
        forms = read_all(source) if isinstance(source, str) else list(source)
        if not forms:
            raise ExpandError("empty program")
        defines: List[Tuple[Symbol, Datum]] = []
        body: List[Datum] = []
        for form in forms:
            if _is_form(form, "define"):
                if body:
                    raise ExpandError(
                        "definitions must precede expressions at top level"
                    )
                defines.append(self._parse_define(form))
            else:
                body.append(form)
        if not body:
            if not defines:
                raise ExpandError("program has no expressions")
            body = [defines[-1][0]]
        if defines:
            return self._expand_letrec(tuple(defines), body)
        return self._expand_begin(body)

    def fresh(self, hint: str = "t") -> str:
        """Return a fresh temporary name (reserved ``%`` namespace)."""
        name = f"%{hint}{self._gensym_counter}"
        self._gensym_counter += 1
        return name

    # -- compound forms ----------------------------------------------------

    def _expand_compound(self, datum: tuple) -> Expr:
        if not datum:
            raise ExpandError("() is not an expression; did you mean '()?")
        head = datum[0]
        if isinstance(head, Symbol) and head.name in _KEYWORDS:
            method = getattr(self, "_form_" + _method_name(head.name), None)
            if method is None:
                raise ExpandError(f"{head.name} is not allowed here")
            return method(datum)
        return Call(tuple(self.expand(sub) for sub in datum))

    def _form_quote(self, datum: tuple) -> Expr:
        if len(datum) != 2:
            raise ExpandError(f"malformed quote: {datum_to_string(datum)}")
        return self._expand_quotation(datum[1])

    def _expand_quotation(self, value: Datum) -> Expr:
        if isinstance(value, (bool, int, str, Char, Symbol)):
            return Quote(value)
        if isinstance(value, tuple):
            if not value:
                return Quote(())
            elements = tuple(self._expand_quotation(item) for item in value)
            return Call((Var("list"),) + elements)
        if isinstance(value, VectorDatum):
            return self._expand_vector_constant(value)
        raise ExpandError(f"cannot quote: {value!r}")

    def _expand_vector_constant(self, vector: VectorDatum) -> Expr:
        elements = tuple(self._expand_quotation(item) for item in vector.items)
        return Call((Var("vector"),) + elements)

    def _form_lambda(self, datum: tuple) -> Expr:
        if len(datum) < 3:
            raise ExpandError(f"malformed lambda: {datum_to_string(datum)}")
        params = self._parse_params(datum[1])
        return Lambda(params, self.expand_body(datum[2:]))

    def _form_if(self, datum: tuple) -> Expr:
        if len(datum) == 3:
            return If(self.expand(datum[1]), self.expand(datum[2]), Quote(0))
        if len(datum) == 4:
            return If(
                self.expand(datum[1]), self.expand(datum[2]), self.expand(datum[3])
            )
        raise ExpandError(f"malformed if: {datum_to_string(datum)}")

    def _form_set_bang(self, datum: tuple) -> Expr:
        if len(datum) != 3 or not isinstance(datum[1], Symbol):
            raise ExpandError(f"malformed set!: {datum_to_string(datum)}")
        if datum[1].name in _KEYWORDS:
            raise ExpandError(f"cannot assign keyword: {datum[1].name}")
        return SetBang(datum[1].name, self.expand(datum[2]))

    def _form_begin(self, datum: tuple) -> Expr:
        if len(datum) < 2:
            raise ExpandError("empty begin")
        return self._expand_begin(datum[1:])

    def _expand_begin(self, forms: Sequence[Datum]) -> Expr:
        if len(forms) == 1:
            return self.expand(forms[0])
        first = self.expand(forms[0])
        rest = self._expand_begin(forms[1:])
        return Call((Lambda((self.fresh(),), rest), first))

    def _form_let(self, datum: tuple) -> Expr:
        if len(datum) >= 3 and isinstance(datum[1], Symbol):
            return self._expand_named_let(datum)
        if len(datum) < 3:
            raise ExpandError(f"malformed let: {datum_to_string(datum)}")
        names, inits = self._parse_bindings(datum[1])
        body = self.expand_body(datum[2:])
        return Call(
            (Lambda(names, body),) + tuple(self.expand(init) for init in inits)
        )

    def _expand_named_let(self, datum: tuple) -> Expr:
        loop = datum[1]
        if not isinstance(loop, Symbol) or loop.name in _KEYWORDS:
            raise ExpandError(f"bad named-let name: {loop!r}")
        names, inits = self._parse_bindings(datum[2])
        body_forms = datum[3:]
        lambda_form = (Symbol("lambda"), tuple(Symbol(n) for n in names)) + tuple(
            body_forms
        )
        letrec_form = (
            Symbol("letrec"),
            ((loop, lambda_form),),
            (loop,) + tuple(inits),
        )
        return self._form_letrec(letrec_form)

    def _form_let_star(self, datum: tuple) -> Expr:
        if len(datum) < 3:
            raise ExpandError(f"malformed let*: {datum_to_string(datum)}")
        bindings = datum[1]
        if not isinstance(bindings, tuple):
            raise ExpandError("let* bindings must be a list")
        if len(bindings) <= 1:
            return self._form_let((Symbol("let"),) + datum[1:])
        inner = (Symbol("let*"), tuple(bindings[1:])) + tuple(datum[2:])
        outer = (Symbol("let"), (bindings[0],), inner)
        return self._form_let(outer)

    def _form_letrec(self, datum: tuple) -> Expr:
        if len(datum) < 3:
            raise ExpandError(f"malformed letrec: {datum_to_string(datum)}")
        if not isinstance(datum[1], tuple):
            raise ExpandError("letrec bindings must be a list")
        bindings = []
        for binding in datum[1]:
            if (
                not isinstance(binding, tuple)
                or len(binding) != 2
                or not isinstance(binding[0], Symbol)
            ):
                raise ExpandError(f"bad letrec binding: {binding!r}")
            bindings.append((binding[0], binding[1]))
        return self._expand_letrec(tuple(bindings), datum[2:])

    _form_letrec_star = _form_letrec

    def _expand_letrec(
        self, bindings: Tuple[Tuple[Symbol, Datum], ...], body: Sequence[Datum]
    ) -> Expr:
        """(letrec ((x e) ...) body) as dummy-init let + assignments."""
        names = self._parse_params(tuple(name for name, _ in bindings))
        inner: Expr = self.expand_body(body)
        for name, init in reversed(bindings):
            assignment = SetBang(name.name, self.expand(init))
            inner = Call((Lambda((self.fresh(),), inner), assignment))
        return Call((Lambda(names, inner),) + (Quote(0),) * len(names))

    def _form_cond(self, datum: tuple) -> Expr:
        return self._expand_cond_clauses(datum[1:])

    def _expand_cond_clauses(self, clauses: Sequence[Datum]) -> Expr:
        if not clauses:
            return Quote(0)
        clause = clauses[0]
        if not isinstance(clause, tuple) or not clause:
            raise ExpandError(f"bad cond clause: {clause!r}")
        if isinstance(clause[0], Symbol) and clause[0] is _ELSE:
            if len(clause) < 2:
                raise ExpandError("empty else clause")
            if len(clauses) > 1:
                raise ExpandError("else clause must be last")
            return self._expand_begin(clause[1:])
        test = self.expand(clause[0])
        rest = self._expand_cond_clauses(clauses[1:])
        if len(clause) == 1:
            temp = self.fresh()
            return Call((Lambda((temp,), If(Var(temp), Var(temp), rest)), test))
        if len(clause) == 3 and isinstance(clause[1], Symbol) and clause[1] is _ARROW:
            temp = self.fresh()
            receiver = self.expand(clause[2])
            applied = Call((receiver, Var(temp)))
            return Call((Lambda((temp,), If(Var(temp), applied, rest)), test))
        return If(test, self._expand_begin(clause[1:]), rest)

    def _form_case(self, datum: tuple) -> Expr:
        if len(datum) < 3:
            raise ExpandError(f"malformed case: {datum_to_string(datum)}")
        temp = self.fresh("key")
        body = self._expand_case_clauses(temp, datum[2:])
        return Call((Lambda((temp,), body), self.expand(datum[1])))

    def _expand_case_clauses(self, key: str, clauses: Sequence[Datum]) -> Expr:
        if not clauses:
            return Quote(0)
        clause = clauses[0]
        if not isinstance(clause, tuple) or len(clause) < 2:
            raise ExpandError(f"bad case clause: {clause!r}")
        if isinstance(clause[0], Symbol) and clause[0] is _ELSE:
            if len(clauses) > 1:
                raise ExpandError("else clause must be last")
            return self._expand_begin(clause[1:])
        if not isinstance(clause[0], tuple):
            raise ExpandError(f"case clause datums must be a list: {clause!r}")
        test: Optional[Expr] = None
        for literal in clause[0]:
            comparison = Call(
                (Var("eqv?"), Var(key), self._expand_quotation(literal))
            )
            test = comparison if test is None else If(test, Quote(True), comparison)
        if test is None:
            test = Quote(False)
        rest = self._expand_case_clauses(key, clauses[1:])
        return If(test, self._expand_begin(clause[1:]), rest)

    def _form_and(self, datum: tuple) -> Expr:
        forms = datum[1:]
        if not forms:
            return Quote(True)
        if len(forms) == 1:
            return self.expand(forms[0])
        return If(
            self.expand(forms[0]),
            self._form_and((Symbol("and"),) + tuple(forms[1:])),
            Quote(False),
        )

    def _form_or(self, datum: tuple) -> Expr:
        forms = datum[1:]
        if not forms:
            return Quote(False)
        if len(forms) == 1:
            return self.expand(forms[0])
        temp = self.fresh()
        rest = self._form_or((Symbol("or"),) + tuple(forms[1:]))
        return Call(
            (Lambda((temp,), If(Var(temp), Var(temp), rest)), self.expand(forms[0]))
        )

    def _form_when(self, datum: tuple) -> Expr:
        if len(datum) < 3:
            raise ExpandError(f"malformed when: {datum_to_string(datum)}")
        return If(self.expand(datum[1]), self._expand_begin(datum[2:]), Quote(0))

    def _form_unless(self, datum: tuple) -> Expr:
        if len(datum) < 3:
            raise ExpandError(f"malformed unless: {datum_to_string(datum)}")
        return If(self.expand(datum[1]), Quote(0), self._expand_begin(datum[2:]))

    def _form_do(self, datum: tuple) -> Expr:
        if len(datum) < 3 or not isinstance(datum[1], tuple):
            raise ExpandError(f"malformed do: {datum_to_string(datum)}")
        specs = []
        for spec in datum[1]:
            if (
                not isinstance(spec, tuple)
                or len(spec) not in (2, 3)
                or not isinstance(spec[0], Symbol)
            ):
                raise ExpandError(f"bad do binding: {spec!r}")
            step = spec[2] if len(spec) == 3 else spec[0]
            specs.append((spec[0], spec[1], step))
        exit_clause = datum[2]
        if not isinstance(exit_clause, tuple) or not exit_clause:
            raise ExpandError(f"bad do exit clause: {exit_clause!r}")
        loop = Symbol(self.fresh("do"))
        test = exit_clause[0]
        results = exit_clause[1:]
        result_form: Datum = (
            ((Symbol("begin"),) + tuple(results)) if results else (_QUOTE, 0)
        )
        body = datum[3:]
        recur = (loop,) + tuple(step for _, _, step in specs)
        loop_body: Datum = (
            ((Symbol("begin"),) + tuple(body) + (recur,)) if body else recur
        )
        lambda_form = (
            (Symbol("lambda"), tuple(name for name, _, _ in specs))
            + ((Symbol("if"), test, result_form, loop_body),)
        )
        letrec_form = (
            Symbol("letrec"),
            ((loop, lambda_form),),
            (loop,) + tuple(init for _, init, _ in specs),
        )
        return self._form_letrec(letrec_form)

    def _form_define(self, datum: tuple) -> Expr:
        raise ExpandError("define is only allowed at top level or body head")

    def _form_else(self, datum: tuple) -> Expr:
        raise ExpandError("else outside cond/case")

    def _form_quasiquote(self, datum: tuple) -> Expr:
        if len(datum) != 2:
            raise ExpandError(f"malformed quasiquote: {datum_to_string(datum)}")
        return self._expand_quasi(datum[1], 1)

    def _expand_quasi(self, template: Datum, depth: int) -> Expr:
        """Expand a quasiquote template into list/append/vector calls.

        Nested quasiquotes raise the depth; unquotes lower it and
        splice in evaluated expressions at depth 0, per R5RS section
        4.2.6 (the common cases; unquote-splicing at vector level and
        improper templates are not needed by any supported program).
        """
        if isinstance(template, tuple) and template:
            head = template[0]
            if head is Symbol("unquote"):
                if len(template) != 2:
                    raise ExpandError("malformed unquote")
                if depth == 1:
                    return self.expand(template[1])
                inner = self._expand_quasi(template[1], depth - 1)
                return Call((Var("list"), Quote(Symbol("unquote")), inner))
            if head is Symbol("quasiquote"):
                if len(template) != 2:
                    raise ExpandError("malformed nested quasiquote")
                inner = self._expand_quasi(template[1], depth + 1)
                return Call((Var("list"), Quote(Symbol("quasiquote")), inner))
            # A list template: build it with append so that
            # unquote-splicing elements splice.
            segments: List[Expr] = []
            plain: List[Expr] = []
            for item in template:
                if (
                    isinstance(item, tuple)
                    and item
                    and item[0] is Symbol("unquote-splicing")
                ):
                    if len(item) != 2:
                        raise ExpandError("malformed unquote-splicing")
                    if depth != 1:
                        plain.append(
                            Call(
                                (
                                    Var("list"),
                                    Quote(Symbol("unquote-splicing")),
                                    self._expand_quasi(item[1], depth - 1),
                                )
                            )
                        )
                        continue
                    if plain:
                        segments.append(Call((Var("list"),) + tuple(plain)))
                        plain = []
                    segments.append(self.expand(item[1]))
                else:
                    plain.append(self._expand_quasi(item, depth))
            if plain:
                segments.append(Call((Var("list"),) + tuple(plain)))
            if not segments:
                return Quote(())
            if len(segments) == 1:
                return segments[0]
            return Call((Var("append"),) + tuple(segments))
        if isinstance(template, VectorDatum):
            elements = tuple(
                self._expand_quasi(item, depth) for item in template.items
            )
            return Call((Var("vector"),) + elements)
        return self._expand_quotation(template)

    def _form_unquote(self, datum: tuple) -> Expr:
        raise ExpandError("unquote outside quasiquote")

    _form_unquote_splicing = _form_unquote

    # -- small parsers -----------------------------------------------------

    def _parse_define(self, datum: tuple) -> Tuple[Symbol, Datum]:
        if len(datum) < 2:
            raise ExpandError(f"malformed define: {datum_to_string(datum)}")
        target = datum[1]
        if isinstance(target, Symbol):
            if len(datum) != 3:
                raise ExpandError(f"malformed define: {datum_to_string(datum)}")
            return target, datum[2]
        if isinstance(target, tuple) and target and isinstance(target[0], Symbol):
            name = target[0]
            lambda_form = (Symbol("lambda"), tuple(target[1:])) + tuple(datum[2:])
            return name, lambda_form
        raise ExpandError(f"malformed define: {datum_to_string(datum)}")

    @staticmethod
    def _parse_params(params: Datum) -> Tuple[str, ...]:
        if not isinstance(params, tuple):
            raise ExpandError(f"parameter list expected: {params!r}")
        names = []
        for param in params:
            if not isinstance(param, Symbol):
                raise ExpandError(f"bad parameter: {param!r}")
            if param.name in _KEYWORDS:
                raise ExpandError(f"keyword used as parameter: {param.name}")
            names.append(param.name)
        if len(set(names)) != len(names):
            raise ExpandError(f"duplicate parameter in {names}")
        return tuple(names)

    def _parse_bindings(
        self, bindings: Datum
    ) -> Tuple[Tuple[str, ...], Tuple[Datum, ...]]:
        if not isinstance(bindings, tuple):
            raise ExpandError(f"binding list expected: {bindings!r}")
        names: List[str] = []
        inits: List[Datum] = []
        for binding in bindings:
            if (
                not isinstance(binding, tuple)
                or len(binding) != 2
                or not isinstance(binding[0], Symbol)
            ):
                raise ExpandError(f"bad binding: {binding!r}")
            if binding[0].name in _KEYWORDS:
                raise ExpandError(f"keyword used as variable: {binding[0].name}")
            names.append(binding[0].name)
            inits.append(binding[1])
        if len(set(names)) != len(names):
            raise ExpandError(f"duplicate variable in {names}")
        return tuple(names), tuple(inits)


def _method_name(keyword: str) -> str:
    return (
        keyword.replace("!", "_bang")
        .replace("*", "_star")
        .replace("-", "_")
        .replace("=>", "arrow")
    )


def expand_expression(source: Union[str, Datum]) -> Expr:
    """Expand a single expression from source text or a datum."""
    expander = Expander()
    if isinstance(source, str):
        forms = read_all(source)
        if len(forms) != 1:
            raise ExpandError("expected exactly one expression")
        return expander.expand(forms[0])
    return expander.expand(source)


def expand_program(source: Union[str, Sequence[Datum]]) -> Expr:
    """Expand a whole program (defines + expressions) to Core Scheme."""
    return Expander().expand_program(source)
