"""Core Scheme syntax: AST, expander, free variables, tail analysis."""

from .ast import (
    Call,
    Expr,
    If,
    Lambda,
    Quote,
    SetBang,
    Var,
    ast_size,
    core_to_string,
    unparse,
    walk,
)
from .expander import ExpandError, Expander, expand_expression, expand_program
from .free_vars import free_vars, free_vars_of_all
from .tail import CallSite, call_sites, tail_calls, tail_expressions
from .validate import ValidationError, validate

__all__ = [
    "Call",
    "Expr",
    "If",
    "Lambda",
    "Quote",
    "SetBang",
    "Var",
    "ast_size",
    "core_to_string",
    "unparse",
    "walk",
    "ExpandError",
    "Expander",
    "expand_expression",
    "expand_program",
    "free_vars",
    "free_vars_of_all",
    "CallSite",
    "call_sites",
    "tail_calls",
    "tail_expressions",
    "ValidationError",
    "validate",
]
