"""Core Scheme internal syntax (Figure 1 of the paper).

::

    E ::= (quote c)            constants
        | I                    variable references
        | L                    lambda expressions
        | (if E0 E1 E2)        conditional expressions
        | (set! I E0)          assignments
        | (E0 E1 ...)          procedure calls
    L ::= (lambda (I1 ...) E)

AST nodes use *identity* equality (``eq=False``) so that two textually
identical subexpressions at different positions remain distinct; the
tail-expression analysis and the call-site statistics of Figure 2
depend on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple, Union

from ..reader.datum import Char, Symbol, datum_to_string

#: Constants that may appear under ``quote`` in validated programs.
#: Section 12 forbids compound constants (vectors, strings, nonempty
#: lists) because programs and inputs must not share storage.  The
#: empty list and strings are accepted by the expander but flagged by
#: the strict validator.
Constant = Union[bool, int, Symbol, Char, str, tuple]


@dataclass(frozen=True, eq=False)
class Expr:
    """Base class for Core Scheme expressions."""

    def subexpressions(self) -> Tuple["Expr", ...]:
        return ()


@dataclass(frozen=True, eq=False)
class Quote(Expr):
    """``(quote c)`` — evaluates to the constant ``c``."""

    value: Constant


@dataclass(frozen=True, eq=False)
class Var(Expr):
    """A variable reference ``I``."""

    name: str


@dataclass(frozen=True, eq=False)
class Lambda(Expr):
    """``(lambda (I1 ...) E)`` — a lambda expression with one body."""

    params: Tuple[str, ...]
    body: Expr

    def __post_init__(self):
        if len(set(self.params)) != len(self.params):
            raise ValueError(f"duplicate parameter in {self.params}")

    def subexpressions(self) -> Tuple[Expr, ...]:
        return (self.body,)


@dataclass(frozen=True, eq=False)
class If(Expr):
    """``(if E0 E1 E2)`` — a three-armed conditional."""

    test: Expr
    consequent: Expr
    alternative: Expr

    def subexpressions(self) -> Tuple[Expr, ...]:
        return (self.test, self.consequent, self.alternative)


@dataclass(frozen=True, eq=False)
class SetBang(Expr):
    """``(set! I E0)`` — assignment to a bound variable."""

    name: str
    expr: Expr

    def subexpressions(self) -> Tuple[Expr, ...]:
        return (self.expr,)


@dataclass(frozen=True, eq=False)
class Call(Expr):
    """``(E0 E1 ...)`` — a procedure call.

    ``exprs[0]`` is the operator, the rest are operands; the machine
    evaluates a (policy-chosen) permutation of the whole sequence, as
    in the paper's push rule.
    """

    exprs: Tuple[Expr, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.exprs:
            raise ValueError("a call needs at least an operator")

    @property
    def operator(self) -> Expr:
        return self.exprs[0]

    @property
    def operands(self) -> Tuple[Expr, ...]:
        return self.exprs[1:]

    def subexpressions(self) -> Tuple[Expr, ...]:
        return self.exprs


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield *expr* and every subexpression, preorder."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.subexpressions()))


def ast_size(expr: Expr) -> int:
    """The number of nodes in the abstract syntax tree (the |P| of
    Definition 23)."""
    return sum(1 for _ in walk(expr))


def unparse(expr: Expr):
    """Render a Core Scheme AST back to a datum tree (for debugging,
    tests, and reports)."""
    if isinstance(expr, Quote):
        return (Symbol("quote"), expr.value)
    if isinstance(expr, Var):
        return Symbol(expr.name)
    if isinstance(expr, Lambda):
        params = tuple(Symbol(p) for p in expr.params)
        return (Symbol("lambda"), params, unparse(expr.body))
    if isinstance(expr, If):
        return (
            Symbol("if"),
            unparse(expr.test),
            unparse(expr.consequent),
            unparse(expr.alternative),
        )
    if isinstance(expr, SetBang):
        return (Symbol("set!"), Symbol(expr.name), unparse(expr.expr))
    if isinstance(expr, Call):
        return tuple(unparse(e) for e in expr.exprs)
    raise TypeError(f"not a Core Scheme expression: {expr!r}")


def core_to_string(expr: Expr) -> str:
    """Render a Core Scheme AST to external syntax."""
    return datum_to_string(unparse(expr))
