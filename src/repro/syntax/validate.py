"""Well-formedness checks for Programs and Inputs (section 12).

Section 12 of the paper: "Let Program and Input both denote the set of
Core Scheme expressions that contain no locations, and whose free
variables are bound in rho_0.  ...  The easiest way to ensure this is
to forbid vector, string, and list constants."

ASTs built by the expander never contain locations, so the validator
checks the two remaining conditions:

- every quoted constant is atomic (booleans, exact integers, symbols,
  characters; the empty list and strings are rejected in strict mode);
- every free variable is bound in the supplied global environment.
"""

from __future__ import annotations

from typing import Iterable

from ..reader.datum import Char, Symbol
from .ast import Expr, Quote, walk
from .free_vars import free_vars


class ValidationError(ValueError):
    """Raised when an expression is not a valid Program or Input."""


_ATOMIC = (bool, int, Symbol, Char)


def validate(
    expr: Expr, global_names: Iterable[str], strict: bool = True
) -> Expr:
    """Check that *expr* is a valid Program/Input expression.

    Returns *expr* so the call composes with pipelines.  ``strict``
    additionally rejects string constants and the empty list, matching
    the letter of section 12; non-strict mode permits them (they are
    immutable here, so sharing is harmless) for convenience programs.
    """
    bound = frozenset(global_names)
    unbound = sorted(free_vars(expr) - bound)
    if unbound:
        raise ValidationError(
            "free variables not bound in the initial environment: "
            + ", ".join(unbound)
        )
    for node in walk(expr):
        if isinstance(node, Quote):
            value = node.value
            if isinstance(value, _ATOMIC) or value == ():
                # The empty list is an immediate value (NIL) in this
                # reproduction: it allocates nothing and shares no
                # storage, so it is safe even in strict mode.
                continue
            if not strict and isinstance(value, str):
                continue
            raise ValidationError(
                f"compound constant forbidden by section 12: {value!r}"
            )
    return expr
