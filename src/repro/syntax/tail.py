"""Tail expressions and tail calls (Definitions 1 and 2).

Definition 1: the tail expressions of a Core Scheme program are:

1. the body of every lambda expression;
2. both arms of a conditional that is itself a tail expression;
3. nothing else.

Definition 2: a tail call is a tail expression that is a procedure
call.

These analyses feed the Figure 2 reproduction (static frequency of
tail calls) via :mod:`repro.analysis.frequency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from .ast import Call, Expr, If, Lambda, Quote, SetBang, Var


def tail_expressions(program: Expr, program_is_tail: bool = False) -> FrozenSet[Expr]:
    """Return the set of tail expressions of *program*.

    By Definition 1 only lambda bodies seed tailness; pass
    ``program_is_tail=True`` to additionally treat the whole program
    expression as a tail expression (useful when analysing a body that
    will be spliced into a lambda).
    """
    tails: Set[Expr] = set()

    def visit(expr: Expr, in_tail: bool) -> None:
        if in_tail:
            tails.add(expr)
        if isinstance(expr, (Quote, Var)):
            return
        if isinstance(expr, Lambda):
            visit(expr.body, True)
            return
        if isinstance(expr, If):
            visit(expr.test, False)
            visit(expr.consequent, in_tail)
            visit(expr.alternative, in_tail)
            return
        if isinstance(expr, SetBang):
            visit(expr.expr, False)
            return
        if isinstance(expr, Call):
            for sub in expr.exprs:
                visit(sub, False)
            return
        raise TypeError(f"not a Core Scheme expression: {expr!r}")

    visit(program, program_is_tail)
    return frozenset(tails)


def tail_calls(program: Expr, program_is_tail: bool = False) -> FrozenSet[Call]:
    """Return the set of tail calls of *program* (Definition 2)."""
    return frozenset(
        expr
        for expr in tail_expressions(program, program_is_tail)
        if isinstance(expr, Call)
    )


@dataclass(frozen=True)
class CallSite:
    """One procedure-call site, classified for the Figure 2 statistics.

    ``enclosing`` is the innermost lambda containing the call (None for
    calls outside any lambda).  ``operator_name`` is set when the
    operator is a plain variable reference.
    """

    call: Call
    is_tail: bool
    enclosing: Optional[Lambda]
    operator_name: Optional[str]


def call_sites(program: Expr) -> Tuple[CallSite, ...]:
    """Enumerate every call site in *program* with its tail status and
    enclosing lambda."""
    sites: List[CallSite] = []

    def visit(expr: Expr, in_tail: bool, enclosing: Optional[Lambda]) -> None:
        if isinstance(expr, (Quote, Var)):
            return
        if isinstance(expr, Lambda):
            visit(expr.body, True, expr)
            return
        if isinstance(expr, If):
            visit(expr.test, False, enclosing)
            visit(expr.consequent, in_tail, enclosing)
            visit(expr.alternative, in_tail, enclosing)
            return
        if isinstance(expr, SetBang):
            visit(expr.expr, False, enclosing)
            return
        if isinstance(expr, Call):
            operator = expr.operator
            operator_name = operator.name if isinstance(operator, Var) else None
            sites.append(CallSite(expr, in_tail, enclosing, operator_name))
            for sub in expr.exprs:
                visit(sub, False, enclosing)
            return
        raise TypeError(f"not a Core Scheme expression: {expr!r}")

    visit(program, False, None)
    return tuple(sites)
