"""High-level run/compare/sweep drivers and report rendering."""

from .report import render_series, render_table, sparkline
from .runner import RunResult, answers_agree, compare_machines, run

__all__ = [
    "render_series",
    "render_table",
    "sparkline",
    "RunResult",
    "answers_agree",
    "compare_machines",
    "run",
]
