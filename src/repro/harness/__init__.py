"""High-level run/compare/sweep drivers and report rendering."""

from .report import render_series, render_table, sparkline
from .runner import RunResult, answers_agree, compare_machines, run
from .sweep import (
    SweepCell,
    SweepOutcome,
    default_jobs,
    grid_cells,
    run_grid,
    series_from_outcomes,
    sweep_series,
)

__all__ = [
    "render_series",
    "render_table",
    "sparkline",
    "RunResult",
    "answers_agree",
    "compare_machines",
    "run",
    "SweepCell",
    "SweepOutcome",
    "default_jobs",
    "grid_cells",
    "run_grid",
    "series_from_outcomes",
    "sweep_series",
]
