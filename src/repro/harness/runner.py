"""High-level drivers: run a program, compare machines, check answers.

These wrap the reader -> expander -> validator -> machine -> meter
pipeline into single calls used by the examples, tests, and benchmark
harness.  The telemetry stack rides along: :func:`run` threads
``trace``/``metrics`` buses into the metered run, and the full
trace-and-blame driver is :func:`repro.telemetry.blame.trace_run`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Union

from ..machine.answer import answer_string
from ..machine.policy import Policy
from ..machine.primitives import primitive_names
from ..machine.values import Value
from ..machine.variants import REFERENCE_MACHINES, make_stepper
from ..space.consumption import prepare_input, prepare_program
from ..space.meter import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_STEP_LIMIT,
    MeterResult,
    run_metered,
    run_sampled,
    run_to_final,
)
from ..syntax.ast import Expr
from ..syntax.validate import validate

Source = Union[str, Expr]


@dataclass
class RunResult:
    """The outcome of running one program on one machine."""

    machine: str
    answer: str
    value: Value
    steps: int
    sup_space: Optional[int] = None
    consumption: Optional[int] = None

    def __str__(self) -> str:
        return self.answer


def run(
    program: Source,
    argument: Optional[Source] = None,
    machine: str = "tail",
    *,
    meter: Union[bool, str] = False,
    linked: bool = False,
    fixed_precision: bool = False,
    engine: str = "delta",
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    policy: Optional[Policy] = None,
    strict: bool = False,
    gc_interval: int = 1,
    step_limit: int = DEFAULT_STEP_LIMIT,
    answer_limit: int = 10000,
    stepper: str = "annotated",
    budget: Optional[int] = None,
    checkpoint_hook=None,
    trace=None,
    metrics=None,
    blame=None,
    retention=None,
) -> RunResult:
    """Run *program* (optionally applied to *argument*).

    With ``meter=True`` (equivalently ``meter="exact"``) the run is a
    Definition 21 space-efficient computation and the result carries
    sup-space and S_X; without it the run uses a relaxed GC schedule
    and is much faster.  ``meter="sampled"`` selects the checkpointed
    sampling meter (:func:`repro.space.meter.run_sampled`): identical
    numbers, exact measurement only every ``checkpoint_every``
    transitions plus at allocation-burst watermarks, no telemetry.
    ``engine`` picks the metering engine (``"delta"``,
    ``"generational"``, ``"reference"``).

    ``strict=True`` enforces the full section 12 Program/Input
    conditions (atomic constants only, free variables bound in rho_0);
    by default only the free-variable condition is enforced.

    ``stepper`` selects the transition function: ``"annotated"`` (the
    compiled-once live stepper with the full tier stack), ``"gen3"``
    (the same, naming the compiled tier explicitly), ``"gen2"`` (the
    superinstruction stepper with the gen-3 tier off), or ``"seed"``
    (the preserved seed stepper of
    :mod:`repro.machine.reference_step`).  All compute identical
    answers, step counts, and space numbers — the lockstep suite holds
    them equal — so this knob exists for differential testing and
    before/after benchmarking, not for semantics.

    ``budget`` caps the Definition 23 consumption on metered runs: the
    run raises :class:`repro.space.meter.QuotaExceeded` (a structured
    receipt naming the blame-census top holder) the moment its
    certified space lower bound crosses.  ``checkpoint_hook(steps,
    consumption)`` is the sampled meter's progress callback.

    ``trace``/``metrics``/``blame`` attach the telemetry stack (a
    :class:`~repro.telemetry.bus.TraceBus`, a
    :class:`~repro.telemetry.metrics.MetricsRegistry`, a
    :class:`~repro.telemetry.blame.BlameProfiler`).  With ``meter=True``
    they ride the metered loop and observe every transition, space
    measurement, and reclamation; without it the bus is attached to
    the machine's run driver (step/apply events only — space is not
    measured on unmetered runs, and ``blame`` requires the meter).
    """
    if meter is True:
        meter = "exact"
    if meter not in (False, "exact", "sampled"):
        raise ValueError(f"unknown meter mode: {meter!r}")
    if blame is not None and meter != "exact":
        raise ValueError("blame profiling requires the exact meter")
    if retention is not None and meter != "exact":
        raise ValueError("retention profiling requires the exact meter")
    if meter == "sampled" and (trace is not None or metrics is not None):
        raise ValueError("telemetry requires the exact meter")
    if checkpoint_hook is not None and meter != "sampled":
        raise ValueError("checkpoint_hook requires meter='sampled'")
    if budget is not None and not meter:
        raise ValueError("a space budget requires a metered run")
    program_expr = prepare_program(program)
    argument_expr = prepare_input(argument)
    names = primitive_names()
    validate(program_expr, names, strict=strict)
    if argument_expr is not None:
        validate(argument_expr, names, strict=strict)

    stepper_machine = make_stepper(machine, stepper, policy=policy)
    if meter:
        if meter == "sampled":
            result: MeterResult = run_sampled(
                stepper_machine,
                program_expr,
                argument_expr,
                linked=linked,
                fixed_precision=fixed_precision,
                checkpoint_every=checkpoint_every,
                gc_interval=gc_interval,
                step_limit=step_limit,
                engine=engine,
                budget=budget,
                checkpoint_hook=checkpoint_hook,
            )
        else:
            result = run_metered(
                stepper_machine,
                program_expr,
                argument_expr,
                linked=linked,
                fixed_precision=fixed_precision,
                gc_interval=gc_interval,
                step_limit=step_limit,
                engine=engine,
                budget=budget,
                trace=trace,
                metrics=metrics,
                blame=blame,
                retention=retention,
            )
        return RunResult(
            machine=machine,
            answer=answer_string(result.final, answer_limit),
            value=result.final.value,
            steps=result.steps,
            sup_space=result.sup_space,
            consumption=result.consumption,
        )
    if trace is not None:
        trace.meta.update(machine=machine, metered=False)
        trace.emit_phase("run", True)
        stepper_machine.trace = trace
    try:
        final, steps = run_to_final(
            stepper_machine,
            program_expr,
            argument_expr,
            gc_interval=1024,
            step_limit=step_limit,
        )
    finally:
        if trace is not None:
            stepper_machine.trace = None
            trace.emit_phase("run", False)
    if metrics is not None:
        metrics.counter("steps_total", machine=machine).inc(steps)
    return RunResult(
        machine=machine,
        answer=answer_string(final, answer_limit),
        value=final.value,
        steps=steps,
    )


def compare_machines(
    program: Source,
    argument: Optional[Source] = None,
    machines: Iterable[str] = tuple(REFERENCE_MACHINES),
    **options,
) -> Dict[str, RunResult]:
    """Run the same (program, argument) on several machines.

    Corollary 20: all reference implementations compute the same
    answers — so the ``answer`` fields should agree; the space fields
    will not.
    """
    program_expr = prepare_program(program)
    argument_expr = prepare_input(argument)
    return {
        name: run(program_expr, argument_expr, machine=name, **options)
        for name in machines
    }


def answers_agree(results: Dict[str, RunResult]) -> bool:
    """True when every machine produced the same observable answer."""
    answers = {result.answer for result in results.values()}
    return len(answers) == 1
