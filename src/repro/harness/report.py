"""Plain-text report rendering for the benchmark harness.

Every benchmark regenerates its paper artifact as an aligned text
table (the medium the paper itself uses); these helpers keep the
formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table with a rule under the
    header (and a title line above, when given)."""
    rendered_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_series(
    ns: Sequence[int],
    series: dict,
    n_label: str = "N",
    title: Optional[str] = None,
) -> str:
    """Render {label: [values aligned with ns]} as a table with one
    column per label — the shape of a paper figure's data."""
    headers = [n_label] + list(series)
    rows = []
    for index, n in enumerate(ns):
        rows.append([n] + [series[label][index] for label in series])
    return render_table(headers, rows, title=title)


def render_blame_table(
    blame: dict,
    total: Optional[int] = None,
    title: Optional[str] = None,
    limit: Optional[int] = None,
) -> str:
    """Render a space-blame attribution ({label: words}) as a ranked
    "who holds the space" table, largest holder first, with each row's
    share of the total.  ``total`` defaults to the sum of the blame
    (they coincide for an exact decomposition); ``limit`` keeps the top
    rows and folds the rest into one "(other)" line."""
    entries = sorted(blame.items(), key=lambda item: (-item[1], item[0]))
    grand = total if total is not None else sum(blame.values())
    if limit is not None and len(entries) > limit:
        rest = sum(words for _label, words in entries[limit:])
        folded = len(entries) - limit
        entries = entries[:limit]
        entries.append((f"(other: {folded} labels)", rest))
    denominator = grand or 1
    rows: List[Sequence[Cell]] = [
        [label, words, f"{100.0 * words / denominator:.1f}%"]
        for label, words in entries
    ]
    rows.append(["TOTAL", grand, "100.0%" if grand else "-"])
    return render_table(["holder", "words", "share"], rows, title=title)


def render_step_mix(
    counts: dict,
    title: Optional[str] = None,
) -> str:
    """Render a step-kind mix ({kind label: steps}) as a ranked table
    with per-kind shares — the shape of the metrics registry's
    ``step_mix``."""
    entries = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    total = sum(counts.values())
    denominator = total or 1
    rows: List[Sequence[Cell]] = [
        [kind, steps, f"{100.0 * steps / denominator:.1f}%"]
        for kind, steps in entries
    ]
    rows.append(["TOTAL", total, "100.0%" if total else "-"])
    return render_table(["step kind", "steps", "share"], rows, title=title)


def render_retention_diff(
    diff: dict,
    left: str = "left",
    right: str = "right",
    title: Optional[str] = None,
) -> str:
    """Render a :func:`~repro.telemetry.retention.retention_diff`
    payload as a side-by-side per-root-class retained table plus the
    vanished-roots summary line attributing the space gap."""
    classes = sorted(
        set(diff["left"]) | set(diff["right"]),
        key=lambda cls: (
            -(diff["left"].get(cls, 0) - diff["right"].get(cls, 0)),
            cls,
        ),
    )
    rows: List[Sequence[Cell]] = []
    for cls in classes:
        left_words = diff["left"].get(cls, 0)
        right_words = diff["right"].get(cls, 0)
        rows.append([cls, left_words, right_words, left_words - right_words])
    rows.append(
        [
            "TOTAL",
            diff["left_space"],
            diff["right_space"],
            diff["gap"],
        ]
    )
    table = render_table(
        ["root class", f"{left} retained", f"{right} retained", "delta"],
        rows,
        title=title,
    )
    if diff["vanished"]:
        vanished = ", ".join(diff["vanished"])
        table += (
            f"\nvanished on {right}: {vanished}"
            f" ({diff['vanished_words']} of the {diff['gap']}-word gap)"
        )
    return table


def render_why_live(
    snapshot,
    top: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render the why-live root paths of a
    :class:`~repro.telemetry.retention.RetentionSnapshot`'s ``top``
    largest-retained store locations, one ``loc N (M words retained):
    root ... -> ...`` line each."""
    lines: List[str] = []
    if title:
        lines.append(title)
    locations = snapshot.top_locations(top=top)
    if not locations:
        lines.append("(no store locations in this configuration)")
    for location in locations:
        node = snapshot.loc_node[location]
        lines.append(
            f"loc {location} ({snapshot.retained[node]} words retained): "
            f"{snapshot.render_path(location)}"
        )
    return "\n".join(lines)


def render_blame_series(
    series,
    top: int = 6,
    width: int = 60,
    title: Optional[str] = None,
) -> str:
    """Render a :class:`~repro.telemetry.blame.BlameSeries` as stacked
    per-holder unicode sparklines — "who holds the space, and when".

    One line per holder (the ``top`` largest by peak words, the rest
    folded into one ``(other)`` line), each a :func:`sparkline` of that
    holder's words over the sampled steps, normalized to the *global*
    peak so line heights compare across holders; a ``TOTAL`` line
    carries the measured-space trace.  Right-hand columns give each
    holder's peak words and its share of the series peak."""
    count = len(series)
    if not count:
        return (title + "\n" if title else "") + "(empty series)"
    holders = series.holders(top=top)
    kept = set(holders)
    rows = [(holder, series.series_for(holder)) for holder in holders]
    other = [
        sum(words for key, words in blame.items() if key not in kept)
        for blame in series.blames
    ]
    if any(other):
        rows.append(("(other)", other))
    rows.append(("TOTAL", list(series.spaces)))
    peak_total = max(series.spaces) or 1
    label_width = max(len(label) for label, _values in rows)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"steps {series.steps[0]}..{series.steps[-1]}"
        f" · {count} samples · stride {series.stride}"
        f" · accounting {'linked' if series.linked else 'flat'}"
    )
    for label, values in rows:
        peak = max(values)
        lines.append(
            f"{label.ljust(label_width)}  "
            f"{sparkline(values, width, peak=peak_total)}"
            f"  peak {peak}"
            f" ({100.0 * peak / peak_total:.1f}%)"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60,
              peak: Optional[float] = None) -> str:
    """A coarse text sparkline of a space trace (for examples).
    ``peak`` overrides the normalization ceiling so several lines can
    share one scale (the stacked-series renderer passes the global
    peak); the default normalizes to the series' own maximum."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    peak = (max(values) if peak is None else peak) or 1
    if len(values) > width:
        bucket = len(values) / width
        sampled = [
            max(values[int(i * bucket): max(int(i * bucket) + 1,
                                            int((i + 1) * bucket))])
            for i in range(width)
        ]
    else:
        sampled = list(values)
    return "".join(
        blocks[min(len(blocks) - 1, int(v / peak * (len(blocks) - 1)))]
        for v in sampled
    )
