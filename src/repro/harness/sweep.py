"""Parallel sweep harness: fan a (machine x N x accounting) grid of
space measurements over worker processes.

The drivers behind Figure 6, Theorem 25/26, and the section 13 tables
all evaluate the same shape of work: a grid of independent
S_X/U_X measurements, each a full metered run.  A :class:`SweepCell`
freezes one grid point as plain picklable data (program *source*, not
AST — workers re-expand), :func:`run_grid` executes the cells either
serially or on a ``multiprocessing`` pool, and :func:`sweep_series`
mirrors :func:`repro.space.consumption.sweep` for the common
one-machine-over-N series.

Telemetry travels the channel as plain data: ``metrics=True`` ships a
serialized registry per cell (folded by :func:`aggregate_metrics`),
``trace_sample``/``blame_every`` ship a sampled event capture and a
``BlameSeries`` per cell (folded by :func:`aggregate_traces` /
:func:`aggregate_series`) — so ``repro sweep --trace-sample`` sees
who held the space in every cell, not just a summary count.

Degradation is graceful and result-identical: a cell whose submission
or worker fails (pickling, a dead worker process) is re-run serially
in the parent; a cell that exceeds ``timeout`` seconds reports a
``timeout`` error outcome.  ``python -m repro sweep --jobs N`` and the
benchmark drivers (via ``REPRO_SWEEP_JOBS``) go through this module,
and a harness test holds parallel output byte-identical to serial.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..space.consumption import Consumption, measure
from ..space.meter import DEFAULT_CHECKPOINT_EVERY, DEFAULT_STEP_LIMIT


@dataclass(frozen=True)
class SweepCell:
    """One grid point: everything a worker needs, all picklable."""

    key: Tuple
    machine: str
    program: str
    argument: Optional[str] = None
    linked: bool = False
    fixed_precision: bool = False
    engine: str = "delta"
    #: ``"exact"`` (the per-step Definition 21 meter) or ``"sampled"``
    #: (the checkpointed sampling meter — same numbers, fewer exact
    #: measurements; incompatible with the telemetry fields below).
    meter: str = "exact"
    #: Sampled-meter checkpoint cadence (exact measurement at least
    #: every this many transitions).
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    gc_interval: int = 1
    step_limit: int = DEFAULT_STEP_LIMIT
    metrics: bool = False
    #: > 0 attaches a sampled TraceBus to the cell's run: the rate
    #: applies to the high-volume kinds (step/apply) while space/gc
    #: stay unsampled, so the shipped events still replay to the exact
    #: sup-space and collection total.  0 = no tracing.
    trace_sample: int = 0
    #: Ring capacity for the per-cell bus (most recent N survive the
    #: pickle channel); ``None`` ships everything the sampler kept.
    trace_capacity: Optional[int] = 256
    #: > 0 attaches a BlameProfiler (decomposing every k-th measured
    #: configuration) and ships its BlameSeries back.  0 = no blame.
    blame_every: int = 0
    #: > 0 attaches a RetentionProfiler (snapshotting every k-th
    #: measured configuration) and ships its per-root retained-size
    #: series (BlameSeries ``as_dict`` keyed by root labels, pointwise
    #: summing to the measured space) back.  0 = no retention.
    retention_sample: int = 0


@dataclass(frozen=True)
class SweepOutcome:
    """A cell's measurement, or the error that prevented it."""

    cell: SweepCell
    result: Optional[Consumption] = None
    error: Optional[str] = None
    metrics: Optional[dict] = None
    #: Sampled trace events (plain Event tuples) when the cell asked
    #: for tracing; ``None`` otherwise.
    events: Optional[tuple] = None
    #: The cell's BlameSeries in ``as_dict`` form when the cell asked
    #: for blame profiling; ``None`` otherwise.
    series: Optional[dict] = None
    #: The cell's per-root retained-size series (BlameSeries
    #: ``as_dict``) when the cell asked for retention sampling;
    #: ``None`` otherwise.
    retention: Optional[dict] = None

    @property
    def total(self) -> int:
        if self.result is None:
            raise RuntimeError(
                f"sweep cell {self.cell.key} failed: {self.error}"
            )
        return self.result.total


def run_cell(cell: SweepCell) -> SweepOutcome:
    """Execute one cell (module-level so worker processes can import
    it by reference).  Exceptions become error outcomes: they must
    travel back over the pickle channel.

    With ``cell.metrics`` a fresh :class:`MetricsRegistry` rides the
    metered run and comes back serialized (``as_dict``) on the outcome
    — plain data, so it survives the pickle channel, and the parent can
    fold worker registries together with :func:`aggregate_metrics`.
    ``cell.trace_sample`` / ``cell.blame_every`` likewise attach a
    sampled :class:`TraceBus` / :class:`BlameProfiler` and ship the
    kept events (plain tuples) and the cell's ``BlameSeries``
    (``as_dict``) back the same way; the parent folds them with
    :func:`aggregate_traces` / :func:`aggregate_series`."""
    registry = None
    if cell.metrics:
        from ..telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
    bus = None
    if cell.trace_sample > 0:
        from ..telemetry.bus import TraceBus

        rate = cell.trace_sample
        bus = TraceBus(
            capacity=cell.trace_capacity,
            sample={"step": rate, "apply": rate} if rate > 1 else None,
        )
        bus.meta.update(
            machine=cell.machine,
            key=str(cell.key),
            accounting="linked" if cell.linked else "flat",
        )
    blame = None
    if cell.blame_every > 0:
        from ..telemetry.blame import BlameProfiler

        blame = BlameProfiler(every=cell.blame_every)
    retention = None
    if cell.retention_sample > 0:
        from ..telemetry.retention import RetentionProfiler

        retention = RetentionProfiler(every=cell.retention_sample)
    try:
        result = measure(
            cell.machine,
            cell.program,
            cell.argument,
            linked=cell.linked,
            fixed_precision=cell.fixed_precision,
            engine=cell.engine,
            meter=cell.meter,
            checkpoint_every=cell.checkpoint_every,
            gc_interval=cell.gc_interval,
            step_limit=cell.step_limit,
            metrics=registry,
            trace=bus,
            blame=blame,
            retention=retention,
        )
    except Exception as error:  # noqa: BLE001 - reported, not hidden
        return SweepOutcome(cell=cell, error=f"{type(error).__name__}: {error}")
    return SweepOutcome(
        cell=cell,
        result=result,
        metrics=registry.as_dict() if registry is not None else None,
        events=tuple(bus.events) if bus is not None else None,
        series=blame.series().as_dict() if blame is not None else None,
        retention=(
            retention.series().as_dict() if retention is not None else None
        ),
    )


def default_jobs() -> int:
    """Worker count for drivers that do not take a flag: the
    ``REPRO_SWEEP_JOBS`` environment variable, default 1 (serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_SWEEP_JOBS", "1")))
    except ValueError:
        return 1


class ChannelError(RuntimeError):
    """A job could not travel the pickle channel to a worker."""


class RemoteError(RuntimeError):
    """The job function raised inside the worker process."""


class WorkerCrashed(RuntimeError):
    """The worker process died (signal, OOM kill) past its retry
    budget."""


class JobTimeout(RuntimeError):
    """The job exceeded its wall-clock timeout and its worker was
    killed."""


def _pool_worker_main(conn) -> None:
    """Worker-process loop: receive ``(fn, arg)`` jobs, reply with zero
    or more ``("progress", payload)`` messages followed by exactly one
    ``("done", result)`` or ``("error", message)``.  ``None`` shuts the
    worker down.  Module-level so it pickles by reference."""

    def emit(payload) -> None:
        try:
            conn.send(("progress", payload))
        except (BrokenPipeError, OSError):
            pass  # parent gone; the job result will fail the same way

    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        except Exception as error:  # noqa: BLE001 - job didn't unpickle
            # Connection framing survives a failed unpickle, so the
            # channel is still clean; report and keep serving.
            try:
                conn.send(
                    ("error", f"job did not survive the channel: {error}")
                )
                continue
            except Exception:
                break
        if job is None:
            break
        fn, arg = job
        try:
            result = fn(arg, emit)
        except BaseException as error:  # noqa: BLE001 - shipped, not hidden
            reply = ("error", f"{type(error).__name__}: {error}")
        else:
            reply = ("done", result)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
        except Exception as error:  # unpicklable result
            try:
                conn.send(("error", f"unpicklable result: {error}"))
            except Exception:
                break
    try:
        conn.close()
    except OSError:
        pass


class _PoolJob:
    __slots__ = ("fn", "arg", "future", "on_event", "timeout", "attempts",
                 "deadline")

    def __init__(self, fn, arg, future, on_event, timeout):
        self.fn = fn
        self.arg = arg
        self.future = future
        self.on_event = on_event
        self.timeout = timeout
        self.attempts = 0
        self.deadline: Optional[float] = None

    def notify(self, kind: str, payload) -> None:
        if self.on_event is None:
            return
        try:
            self.on_event(kind, payload)
        except Exception:  # noqa: BLE001 - observer, never the job
            pass


class _PoolWorker:
    __slots__ = ("process", "conn")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid


class WorkerPool:
    """Long-lived worker processes over pickle channels — the sweep
    harness's `run_grid` plumbing, extracted so the serving layer can
    schedule on it too.

    Each worker is one ``multiprocessing.Process`` running
    :func:`_pool_worker_main` on its own duplex pipe.  A dispatcher
    thread in the parent multiplexes the busy pipes
    (``multiprocessing.connection.wait``), assigns queued jobs to idle
    workers, and turns channel traffic into
    :class:`concurrent.futures.Future` results:

    - ``("progress", payload)`` messages fan out to the job's
      ``on_event`` callback (kinds ``start`` / ``retry`` /
      ``progress``) — called on the dispatcher thread, so observers
      must be quick and thread-safe.
    - A worker death (pipe EOF — e.g. SIGKILL) respawns the worker and
      **re-queues the job at the front** until it has been attempted
      ``1 + max_retries`` times, after which the future fails with
      :class:`WorkerCrashed`.  Each retry emits a ``retry`` event: the
      serving layer's ``retried`` receipt.
    - A job still running ``timeout`` seconds after dispatch gets its
      worker killed (and replaced); the future fails with
      :class:`JobTimeout`.
    - A job that cannot be pickled fails its future with
      :class:`ChannelError` without losing the worker; a job function
      that raises in the worker fails with :class:`RemoteError`.

    Futures are not cancellable; ``shutdown()`` fails whatever is still
    outstanding.
    """

    _POLL = 0.2  # dispatcher wake cadence when a deadline is armed

    def __init__(self, workers: int = 1, max_retries: int = 1, context=None):
        import multiprocessing
        import threading

        if workers < 1:
            raise ValueError("workers must be positive")
        self._ctx = context if context is not None else multiprocessing
        self._max_retries = max_retries
        self._lock = threading.Lock()
        self._pending: "deque[_PoolJob]" = deque()
        self._idle: List[_PoolWorker] = []
        self._busy: Dict[object, Tuple[_PoolWorker, _PoolJob]] = {}
        self._stop = False
        self._wake_recv, self._wake_send = self._ctx.Pipe(duplex=False)
        with self._lock:
            for _ in range(workers):
                self._spawn_locked()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="worker-pool-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- public API ----------------------------------------------------

    def submit(self, fn, arg, *, timeout: Optional[float] = None,
               on_event=None):
        """Queue ``fn(arg, emit)`` on a worker; returns a Future."""
        from concurrent.futures import Future

        future: Future = Future()
        job = _PoolJob(fn, arg, future, on_event, timeout)
        with self._lock:
            if self._stop:
                raise RuntimeError("pool is shut down")
            self._pending.append(job)
        self._wake()
        return future

    def pids(self) -> List[int]:
        """Live worker pids (fault-injection tests kill these)."""
        with self._lock:
            workers = self._idle + [w for w, _job in self._busy.values()]
            return [w.pid for w in workers if w.pid is not None]

    def shutdown(self) -> None:
        """Stop the dispatcher, fail outstanding futures, reap the
        workers.  Idempotent."""
        with self._lock:
            if self._stop:
                return
            self._stop = True
        self._wake()
        self._dispatcher.join(timeout=10)
        with self._lock:
            pending = list(self._pending)
            self._pending.clear()
            busy = list(self._busy.values())
            self._busy.clear()
            workers = self._idle + [worker for worker, _job in busy]
            self._idle = []
        for job in pending:
            _fail(job.future, RuntimeError("pool shut down"))
        for _worker, job in busy:
            _fail(job.future, RuntimeError("pool shut down"))
        for worker in workers:
            try:
                worker.process.terminate()
            except Exception:
                pass
        for worker in workers:
            worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except OSError:
                pass
        try:
            self._wake_recv.close()
            self._wake_send.close()
        except OSError:
            pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- dispatcher ----------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_send.send(None)
        except (BrokenPipeError, OSError):
            pass

    def _spawn_locked(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        self._idle.append(_PoolWorker(process, parent_conn))

    def _dispatch_loop(self) -> None:
        from multiprocessing.connection import wait as conn_wait

        while True:
            with self._lock:
                if self._stop:
                    return
                self._assign_locked()
                conns = list(self._busy)
                deadlines = [
                    job.deadline
                    for _worker, job in self._busy.values()
                    if job.deadline is not None
                ]
            wait_for = None
            if deadlines:
                wait_for = max(0.0, min(deadlines) - time.monotonic())
                wait_for = min(wait_for, self._POLL)
            try:
                ready = conn_wait([self._wake_recv] + conns, wait_for)
            except OSError:
                ready = []
            for conn in ready:
                if conn is self._wake_recv:
                    try:
                        while self._wake_recv.poll():
                            self._wake_recv.recv()
                    except (EOFError, OSError):
                        pass
                    continue
                self._service(conn)
            self._reap_timeouts()

    def _assign_locked(self) -> None:
        while self._pending and self._idle:
            job = self._pending.popleft()
            worker = self._idle.pop()
            try:
                worker.conn.send((job.fn, job.arg))
            except Exception as error:  # unpicklable job; worker is fine
                self._idle.append(worker)
                _fail(job.future, ChannelError(
                    f"job did not survive the channel: {error}"
                ))
                continue
            job.attempts += 1
            if job.timeout is not None:
                job.deadline = time.monotonic() + job.timeout
            self._busy[worker.conn] = (worker, job)
            job.notify("start", {"pid": worker.pid, "attempt": job.attempts})

    def _service(self, conn) -> None:
        with self._lock:
            entry = self._busy.get(conn)
        if entry is None:
            return
        worker, job = entry
        try:
            kind, payload = conn.recv()
        except (EOFError, OSError):
            self._worker_died(conn)
            return
        if kind == "progress":
            job.notify("progress", payload)
            return
        with self._lock:
            self._busy.pop(conn, None)
            if not self._stop:
                self._idle.append(worker)
        if kind == "done":
            if not job.future.done():
                job.future.set_result(payload)
        else:
            _fail(job.future, RemoteError(str(payload)))

    def _worker_died(self, conn) -> None:
        with self._lock:
            worker, job = self._busy.pop(conn)
            if not self._stop:
                self._spawn_locked()
        pid = worker.pid
        worker.process.join(timeout=5)
        try:
            worker.conn.close()
        except OSError:
            pass
        if job.attempts <= self._max_retries:
            job.notify("retry", {"pid": pid, "attempt": job.attempts})
            with self._lock:
                self._pending.appendleft(job)
        else:
            _fail(job.future, WorkerCrashed(
                f"worker {pid} died after {job.attempts} attempt(s)"
            ))

    def _reap_timeouts(self) -> None:
        now = time.monotonic()
        with self._lock:
            expired = [
                conn
                for conn, (_worker, job) in self._busy.items()
                if job.deadline is not None and now >= job.deadline
            ]
            victims = []
            for conn in expired:
                worker, job = self._busy.pop(conn)
                victims.append((worker, job))
                if not self._stop:
                    self._spawn_locked()
        for worker, job in victims:
            try:
                worker.process.kill()
            except Exception:
                pass
            worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except OSError:
                pass
            _fail(job.future, JobTimeout(
                f"timeout: exceeded {job.timeout}s"
            ))


def _fail(future, error: Exception) -> None:
    if not future.done():
        future.set_exception(error)


def _run_cell_job(cell: SweepCell, emit) -> SweepOutcome:
    """`run_cell` in WorkerPool job shape (the sweep sends no
    progress)."""
    return run_cell(cell)


def run_grid(
    cells: Sequence[SweepCell],
    jobs: int = 1,
    timeout: Optional[float] = None,
) -> List[SweepOutcome]:
    """Run every cell; outcomes come back in cell order.

    ``jobs`` > 1 fans the cells over a :class:`WorkerPool`.  A cell
    whose worker dies is retried on a fresh worker (and serially in the
    parent as the last resort); a cell that cannot be pickled is re-run
    serially; a cell still running after ``timeout`` seconds yields a
    ``timeout`` error outcome.  Serial and parallel runs produce
    identical measurements — the cells share nothing.
    """
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    try:
        pool = WorkerPool(workers=min(jobs, len(cells)))
    except Exception:  # no multiprocessing on this platform
        return [run_cell(cell) for cell in cells]
    outcomes: List[Optional[SweepOutcome]] = [None] * len(cells)
    try:
        futures = [
            pool.submit(_run_cell_job, cell, timeout=timeout)
            for cell in cells
        ]
        for index, future in enumerate(futures):
            try:
                outcomes[index] = future.result()
            except JobTimeout:
                outcomes[index] = SweepOutcome(
                    cell=cells[index],
                    error=f"timeout: exceeded {timeout}s",
                )
            except Exception:
                # The worker died past retries or the cell did not
                # survive the channel; the measurement itself may be
                # fine — retry in-process.
                outcomes[index] = run_cell(cells[index])
    finally:
        pool.shutdown()
    return [outcome for outcome in outcomes if outcome is not None]


def sweep_series(
    machine: str,
    program_for: Callable[[int], str],
    ns: Iterable[int],
    argument_for: Optional[Callable[[int], Optional[str]]] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    **options,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Parallel counterpart of :func:`repro.space.consumption.sweep`:
    S_X(P_n, n) totals over a family, errors raised."""
    ns = tuple(ns)
    cells = [
        SweepCell(
            key=(machine, n),
            machine=machine,
            program=program_for(n),
            argument=(
                argument_for(n) if argument_for is not None else str(n)
            ),
            **options,
        )
        for n in ns
    ]
    outcomes = run_grid(cells, jobs=jobs, timeout=timeout)
    return ns, tuple(outcome.total for outcome in outcomes)


def grid_cells(
    sources: Dict[Tuple, str],
    ns: Iterable[int],
    argument_for: Optional[Callable[[int], Optional[str]]] = None,
    **options,
) -> List[SweepCell]:
    """Cells for a labelled grid: ``sources`` maps (label..., machine)
    keys to program source; each is swept over ``ns``.  The cell key
    is the source key plus n."""
    ns = tuple(ns)
    cells = []
    for key, source in sources.items():
        machine = key[-1]
        for n in ns:
            cells.append(
                SweepCell(
                    key=tuple(key) + (n,),
                    machine=machine,
                    program=source,
                    argument=(
                        argument_for(n) if argument_for is not None else str(n)
                    ),
                    **options,
                )
            )
    return cells


def aggregate_metrics(outcomes: Iterable[SweepOutcome]) -> Dict:
    """Fold the per-cell metric dumps of a grid into one serialized
    registry (counters and histograms sum, gauges take the max) —
    the cross-worker aggregation of ``python -m repro sweep --metrics``.
    Cells that failed or ran without metrics contribute nothing."""
    from ..telemetry.metrics import MetricsRegistry

    dumps = [
        outcome.metrics for outcome in outcomes if outcome.metrics is not None
    ]
    return MetricsRegistry.merge(dumps)


def aggregate_traces(outcomes: Iterable[SweepOutcome]) -> Dict:
    """Fold the per-cell event captures of a traced grid into one
    summary: per-kind event counts summed across cells, plus the
    replayed headline numbers (steps and collections sum over the
    grid; sup-space is the max over cells, with the cell key that
    attained it).  Cells that ran without tracing contribute nothing."""
    from ..telemetry.bus import replay

    counts: Dict[str, int] = {}
    cells = 0
    steps = 0
    collected = 0
    sup_space = 0
    sup_cell = None
    for outcome in outcomes:
        if outcome.events is None:
            continue
        cells += 1
        for event in outcome.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        summary = replay(outcome.events)
        steps += summary.steps
        collected += summary.collected
        if summary.sup_space > sup_space:
            sup_space = summary.sup_space
            sup_cell = outcome.cell.key
    return {
        "cells": cells,
        "events": sum(counts.values()),
        "counts": counts,
        "steps": steps,
        "collected": collected,
        "sup_space": sup_space,
        "sup_cell": sup_cell,
    }


def aggregate_series(outcomes: Iterable[SweepOutcome]):
    """Fold the per-cell blame series of a grid into one
    :class:`~repro.telemetry.blame.BlameSeries` (via ``merge``, so
    mixed accountings are refused).  Cells without blame profiling
    contribute nothing."""
    from ..telemetry.blame import BlameSeries

    return BlameSeries.merge(
        [
            BlameSeries.from_dict(outcome.series)
            for outcome in outcomes
            if outcome.series is not None
        ]
    )


def aggregate_retention(outcomes: Iterable[SweepOutcome]):
    """Fold the per-cell retention series of a grid into one
    :class:`~repro.telemetry.blame.BlameSeries` over root labels (via
    ``merge``, so mixed accountings are refused).  Cells without
    retention sampling contribute nothing."""
    from ..telemetry.blame import BlameSeries

    return BlameSeries.merge(
        [
            BlameSeries.from_dict(outcome.retention)
            for outcome in outcomes
            if outcome.retention is not None
        ]
    )


def series_from_outcomes(
    outcomes: Iterable[SweepOutcome],
) -> Dict[Tuple, Dict[int, int]]:
    """Group grid outcomes back into {key-without-n: {n: total}}."""
    series: Dict[Tuple, Dict[int, int]] = {}
    for outcome in outcomes:
        *key, n = outcome.cell.key
        series.setdefault(tuple(key), {})[n] = outcome.total
    return series


def history_records(outcomes: Iterable[SweepOutcome]) -> List[dict]:
    """Scheduler-history rows (`repro serve --history`) for measured
    outcomes: one record per successful cell whose argument parses as
    an integer N, in the :class:`repro.serving.scheduler.SweepHistory`
    JSONL shape.  Failed cells and non-numeric arguments are skipped —
    they carry no (N, consumption) point to predict from."""
    from ..serving.artifacts import program_sha  # late: avoid cycle

    records: List[dict] = []
    for outcome in outcomes:
        if outcome.result is None:
            continue
        cell = outcome.cell
        try:
            n = int(str(cell.argument).strip())
        except (TypeError, ValueError):
            continue
        records.append({
            "program_sha": program_sha(cell.program),
            "machine": cell.machine,
            "accounting": "linked" if cell.linked else "flat",
            "fixed_precision": cell.fixed_precision,
            "n": n,
            "consumption": outcome.result.total,
        })
    return records


__all__ = [
    "ChannelError",
    "JobTimeout",
    "RemoteError",
    "SweepCell",
    "SweepOutcome",
    "WorkerCrashed",
    "WorkerPool",
    "aggregate_metrics",
    "aggregate_retention",
    "aggregate_series",
    "aggregate_traces",
    "default_jobs",
    "grid_cells",
    "history_records",
    "run_cell",
    "run_grid",
    "series_from_outcomes",
    "sweep_series",
]
