"""Parallel sweep harness: fan a (machine x N x accounting) grid of
space measurements over worker processes.

The drivers behind Figure 6, Theorem 25/26, and the section 13 tables
all evaluate the same shape of work: a grid of independent
S_X/U_X measurements, each a full metered run.  A :class:`SweepCell`
freezes one grid point as plain picklable data (program *source*, not
AST — workers re-expand), :func:`run_grid` executes the cells either
serially or on a ``multiprocessing`` pool, and :func:`sweep_series`
mirrors :func:`repro.space.consumption.sweep` for the common
one-machine-over-N series.

Degradation is graceful and result-identical: a cell whose submission
or worker fails (pickling, a dead worker process) is re-run serially
in the parent; a cell that exceeds ``timeout`` seconds reports a
``timeout`` error outcome.  ``python -m repro sweep --jobs N`` and the
benchmark drivers (via ``REPRO_SWEEP_JOBS``) go through this module,
and a harness test holds parallel output byte-identical to serial.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..space.consumption import Consumption, measure
from ..space.meter import DEFAULT_STEP_LIMIT


@dataclass(frozen=True)
class SweepCell:
    """One grid point: everything a worker needs, all picklable."""

    key: Tuple
    machine: str
    program: str
    argument: Optional[str] = None
    linked: bool = False
    fixed_precision: bool = False
    engine: str = "delta"
    gc_interval: int = 1
    step_limit: int = DEFAULT_STEP_LIMIT
    metrics: bool = False


@dataclass(frozen=True)
class SweepOutcome:
    """A cell's measurement, or the error that prevented it."""

    cell: SweepCell
    result: Optional[Consumption] = None
    error: Optional[str] = None
    metrics: Optional[dict] = None

    @property
    def total(self) -> int:
        if self.result is None:
            raise RuntimeError(
                f"sweep cell {self.cell.key} failed: {self.error}"
            )
        return self.result.total


def run_cell(cell: SweepCell) -> SweepOutcome:
    """Execute one cell (module-level so worker processes can import
    it by reference).  Exceptions become error outcomes: they must
    travel back over the pickle channel.

    With ``cell.metrics`` a fresh :class:`MetricsRegistry` rides the
    metered run and comes back serialized (``as_dict``) on the outcome
    — plain data, so it survives the pickle channel, and the parent can
    fold worker registries together with :func:`aggregate_metrics`."""
    registry = None
    if cell.metrics:
        from ..telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
    try:
        result = measure(
            cell.machine,
            cell.program,
            cell.argument,
            linked=cell.linked,
            fixed_precision=cell.fixed_precision,
            engine=cell.engine,
            gc_interval=cell.gc_interval,
            step_limit=cell.step_limit,
            metrics=registry,
        )
    except Exception as error:  # noqa: BLE001 - reported, not hidden
        return SweepOutcome(cell=cell, error=f"{type(error).__name__}: {error}")
    return SweepOutcome(
        cell=cell,
        result=result,
        metrics=registry.as_dict() if registry is not None else None,
    )


def default_jobs() -> int:
    """Worker count for drivers that do not take a flag: the
    ``REPRO_SWEEP_JOBS`` environment variable, default 1 (serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_SWEEP_JOBS", "1")))
    except ValueError:
        return 1


def run_grid(
    cells: Sequence[SweepCell],
    jobs: int = 1,
    timeout: Optional[float] = None,
) -> List[SweepOutcome]:
    """Run every cell; outcomes come back in cell order.

    ``jobs`` > 1 fans the cells over a process pool.  A cell whose
    worker dies (or cannot be pickled) is re-run serially; a cell
    still running after ``timeout`` seconds yields a ``timeout``
    error outcome.  Serial and parallel runs produce identical
    measurements — the cells share nothing.
    """
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    try:
        import multiprocessing

        pool = multiprocessing.Pool(processes=min(jobs, len(cells)))
    except (ImportError, OSError):
        return [run_cell(cell) for cell in cells]
    outcomes: List[Optional[SweepOutcome]] = [None] * len(cells)
    try:
        try:
            pending = [
                (index, pool.apply_async(run_cell, (cell,)))
                for index, cell in enumerate(cells)
            ]
        except Exception:  # submission failed (e.g. unpicklable cell)
            pool.terminate()
            return [run_cell(cell) for cell in cells]
        for index, handle in pending:
            try:
                outcomes[index] = handle.get(timeout)
            except multiprocessing.TimeoutError:
                outcomes[index] = SweepOutcome(
                    cell=cells[index],
                    error=f"timeout: exceeded {timeout}s",
                )
            except Exception:
                # The worker died or the result did not survive the
                # channel; the measurement itself may be fine — retry
                # in-process.
                outcomes[index] = run_cell(cells[index])
    finally:
        pool.terminate()
        pool.join()
    return [outcome for outcome in outcomes if outcome is not None]


def sweep_series(
    machine: str,
    program_for: Callable[[int], str],
    ns: Iterable[int],
    argument_for: Optional[Callable[[int], Optional[str]]] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    **options,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Parallel counterpart of :func:`repro.space.consumption.sweep`:
    S_X(P_n, n) totals over a family, errors raised."""
    ns = tuple(ns)
    cells = [
        SweepCell(
            key=(machine, n),
            machine=machine,
            program=program_for(n),
            argument=(
                argument_for(n) if argument_for is not None else str(n)
            ),
            **options,
        )
        for n in ns
    ]
    outcomes = run_grid(cells, jobs=jobs, timeout=timeout)
    return ns, tuple(outcome.total for outcome in outcomes)


def grid_cells(
    sources: Dict[Tuple, str],
    ns: Iterable[int],
    argument_for: Optional[Callable[[int], Optional[str]]] = None,
    **options,
) -> List[SweepCell]:
    """Cells for a labelled grid: ``sources`` maps (label..., machine)
    keys to program source; each is swept over ``ns``.  The cell key
    is the source key plus n."""
    ns = tuple(ns)
    cells = []
    for key, source in sources.items():
        machine = key[-1]
        for n in ns:
            cells.append(
                SweepCell(
                    key=tuple(key) + (n,),
                    machine=machine,
                    program=source,
                    argument=(
                        argument_for(n) if argument_for is not None else str(n)
                    ),
                    **options,
                )
            )
    return cells


def aggregate_metrics(outcomes: Iterable[SweepOutcome]) -> Dict:
    """Fold the per-cell metric dumps of a grid into one serialized
    registry (counters and histograms sum, gauges take the max) —
    the cross-worker aggregation of ``python -m repro sweep --metrics``.
    Cells that failed or ran without metrics contribute nothing."""
    from ..telemetry.metrics import MetricsRegistry

    dumps = [
        outcome.metrics for outcome in outcomes if outcome.metrics is not None
    ]
    return MetricsRegistry.merge(dumps)


def series_from_outcomes(
    outcomes: Iterable[SweepOutcome],
) -> Dict[Tuple, Dict[int, int]]:
    """Group grid outcomes back into {key-without-n: {n: total}}."""
    series: Dict[Tuple, Dict[int, int]] = {}
    for outcome in outcomes:
        *key, n = outcome.cell.key
        series.setdefault(tuple(key), {})[n] = outcome.total
    return series


__all__ = [
    "SweepCell",
    "SweepOutcome",
    "aggregate_metrics",
    "default_jobs",
    "grid_cells",
    "run_cell",
    "run_grid",
    "series_from_outcomes",
    "sweep_series",
]
