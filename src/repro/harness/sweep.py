"""Parallel sweep harness: fan a (machine x N x accounting) grid of
space measurements over worker processes.

The drivers behind Figure 6, Theorem 25/26, and the section 13 tables
all evaluate the same shape of work: a grid of independent
S_X/U_X measurements, each a full metered run.  A :class:`SweepCell`
freezes one grid point as plain picklable data (program *source*, not
AST — workers re-expand), :func:`run_grid` executes the cells either
serially or on a ``multiprocessing`` pool, and :func:`sweep_series`
mirrors :func:`repro.space.consumption.sweep` for the common
one-machine-over-N series.

Telemetry travels the channel as plain data: ``metrics=True`` ships a
serialized registry per cell (folded by :func:`aggregate_metrics`),
``trace_sample``/``blame_every`` ship a sampled event capture and a
``BlameSeries`` per cell (folded by :func:`aggregate_traces` /
:func:`aggregate_series`) — so ``repro sweep --trace-sample`` sees
who held the space in every cell, not just a summary count.

Degradation is graceful and result-identical: a cell whose submission
or worker fails (pickling, a dead worker process) is re-run serially
in the parent; a cell that exceeds ``timeout`` seconds reports a
``timeout`` error outcome.  ``python -m repro sweep --jobs N`` and the
benchmark drivers (via ``REPRO_SWEEP_JOBS``) go through this module,
and a harness test holds parallel output byte-identical to serial.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..space.consumption import Consumption, measure
from ..space.meter import DEFAULT_CHECKPOINT_EVERY, DEFAULT_STEP_LIMIT


@dataclass(frozen=True)
class SweepCell:
    """One grid point: everything a worker needs, all picklable."""

    key: Tuple
    machine: str
    program: str
    argument: Optional[str] = None
    linked: bool = False
    fixed_precision: bool = False
    engine: str = "delta"
    #: ``"exact"`` (the per-step Definition 21 meter) or ``"sampled"``
    #: (the checkpointed sampling meter — same numbers, fewer exact
    #: measurements; incompatible with the telemetry fields below).
    meter: str = "exact"
    #: Sampled-meter checkpoint cadence (exact measurement at least
    #: every this many transitions).
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    gc_interval: int = 1
    step_limit: int = DEFAULT_STEP_LIMIT
    metrics: bool = False
    #: > 0 attaches a sampled TraceBus to the cell's run: the rate
    #: applies to the high-volume kinds (step/apply) while space/gc
    #: stay unsampled, so the shipped events still replay to the exact
    #: sup-space and collection total.  0 = no tracing.
    trace_sample: int = 0
    #: Ring capacity for the per-cell bus (most recent N survive the
    #: pickle channel); ``None`` ships everything the sampler kept.
    trace_capacity: Optional[int] = 256
    #: > 0 attaches a BlameProfiler (decomposing every k-th measured
    #: configuration) and ships its BlameSeries back.  0 = no blame.
    blame_every: int = 0
    #: > 0 attaches a RetentionProfiler (snapshotting every k-th
    #: measured configuration) and ships its per-root retained-size
    #: series (BlameSeries ``as_dict`` keyed by root labels, pointwise
    #: summing to the measured space) back.  0 = no retention.
    retention_sample: int = 0


@dataclass(frozen=True)
class SweepOutcome:
    """A cell's measurement, or the error that prevented it."""

    cell: SweepCell
    result: Optional[Consumption] = None
    error: Optional[str] = None
    metrics: Optional[dict] = None
    #: Sampled trace events (plain Event tuples) when the cell asked
    #: for tracing; ``None`` otherwise.
    events: Optional[tuple] = None
    #: The cell's BlameSeries in ``as_dict`` form when the cell asked
    #: for blame profiling; ``None`` otherwise.
    series: Optional[dict] = None
    #: The cell's per-root retained-size series (BlameSeries
    #: ``as_dict``) when the cell asked for retention sampling;
    #: ``None`` otherwise.
    retention: Optional[dict] = None

    @property
    def total(self) -> int:
        if self.result is None:
            raise RuntimeError(
                f"sweep cell {self.cell.key} failed: {self.error}"
            )
        return self.result.total


def run_cell(cell: SweepCell) -> SweepOutcome:
    """Execute one cell (module-level so worker processes can import
    it by reference).  Exceptions become error outcomes: they must
    travel back over the pickle channel.

    With ``cell.metrics`` a fresh :class:`MetricsRegistry` rides the
    metered run and comes back serialized (``as_dict``) on the outcome
    — plain data, so it survives the pickle channel, and the parent can
    fold worker registries together with :func:`aggregate_metrics`.
    ``cell.trace_sample`` / ``cell.blame_every`` likewise attach a
    sampled :class:`TraceBus` / :class:`BlameProfiler` and ship the
    kept events (plain tuples) and the cell's ``BlameSeries``
    (``as_dict``) back the same way; the parent folds them with
    :func:`aggregate_traces` / :func:`aggregate_series`."""
    registry = None
    if cell.metrics:
        from ..telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
    bus = None
    if cell.trace_sample > 0:
        from ..telemetry.bus import TraceBus

        rate = cell.trace_sample
        bus = TraceBus(
            capacity=cell.trace_capacity,
            sample={"step": rate, "apply": rate} if rate > 1 else None,
        )
        bus.meta.update(
            machine=cell.machine,
            key=str(cell.key),
            accounting="linked" if cell.linked else "flat",
        )
    blame = None
    if cell.blame_every > 0:
        from ..telemetry.blame import BlameProfiler

        blame = BlameProfiler(every=cell.blame_every)
    retention = None
    if cell.retention_sample > 0:
        from ..telemetry.retention import RetentionProfiler

        retention = RetentionProfiler(every=cell.retention_sample)
    try:
        result = measure(
            cell.machine,
            cell.program,
            cell.argument,
            linked=cell.linked,
            fixed_precision=cell.fixed_precision,
            engine=cell.engine,
            meter=cell.meter,
            checkpoint_every=cell.checkpoint_every,
            gc_interval=cell.gc_interval,
            step_limit=cell.step_limit,
            metrics=registry,
            trace=bus,
            blame=blame,
            retention=retention,
        )
    except Exception as error:  # noqa: BLE001 - reported, not hidden
        return SweepOutcome(cell=cell, error=f"{type(error).__name__}: {error}")
    return SweepOutcome(
        cell=cell,
        result=result,
        metrics=registry.as_dict() if registry is not None else None,
        events=tuple(bus.events) if bus is not None else None,
        series=blame.series().as_dict() if blame is not None else None,
        retention=(
            retention.series().as_dict() if retention is not None else None
        ),
    )


def default_jobs() -> int:
    """Worker count for drivers that do not take a flag: the
    ``REPRO_SWEEP_JOBS`` environment variable, default 1 (serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_SWEEP_JOBS", "1")))
    except ValueError:
        return 1


def run_grid(
    cells: Sequence[SweepCell],
    jobs: int = 1,
    timeout: Optional[float] = None,
) -> List[SweepOutcome]:
    """Run every cell; outcomes come back in cell order.

    ``jobs`` > 1 fans the cells over a process pool.  A cell whose
    worker dies (or cannot be pickled) is re-run serially; a cell
    still running after ``timeout`` seconds yields a ``timeout``
    error outcome.  Serial and parallel runs produce identical
    measurements — the cells share nothing.
    """
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    try:
        import multiprocessing

        pool = multiprocessing.Pool(processes=min(jobs, len(cells)))
    except (ImportError, OSError):
        return [run_cell(cell) for cell in cells]
    outcomes: List[Optional[SweepOutcome]] = [None] * len(cells)
    try:
        try:
            pending = [
                (index, pool.apply_async(run_cell, (cell,)))
                for index, cell in enumerate(cells)
            ]
        except Exception:  # submission failed (e.g. unpicklable cell)
            pool.terminate()
            return [run_cell(cell) for cell in cells]
        for index, handle in pending:
            try:
                outcomes[index] = handle.get(timeout)
            except multiprocessing.TimeoutError:
                outcomes[index] = SweepOutcome(
                    cell=cells[index],
                    error=f"timeout: exceeded {timeout}s",
                )
            except Exception:
                # The worker died or the result did not survive the
                # channel; the measurement itself may be fine — retry
                # in-process.
                outcomes[index] = run_cell(cells[index])
    finally:
        pool.terminate()
        pool.join()
    return [outcome for outcome in outcomes if outcome is not None]


def sweep_series(
    machine: str,
    program_for: Callable[[int], str],
    ns: Iterable[int],
    argument_for: Optional[Callable[[int], Optional[str]]] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    **options,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Parallel counterpart of :func:`repro.space.consumption.sweep`:
    S_X(P_n, n) totals over a family, errors raised."""
    ns = tuple(ns)
    cells = [
        SweepCell(
            key=(machine, n),
            machine=machine,
            program=program_for(n),
            argument=(
                argument_for(n) if argument_for is not None else str(n)
            ),
            **options,
        )
        for n in ns
    ]
    outcomes = run_grid(cells, jobs=jobs, timeout=timeout)
    return ns, tuple(outcome.total for outcome in outcomes)


def grid_cells(
    sources: Dict[Tuple, str],
    ns: Iterable[int],
    argument_for: Optional[Callable[[int], Optional[str]]] = None,
    **options,
) -> List[SweepCell]:
    """Cells for a labelled grid: ``sources`` maps (label..., machine)
    keys to program source; each is swept over ``ns``.  The cell key
    is the source key plus n."""
    ns = tuple(ns)
    cells = []
    for key, source in sources.items():
        machine = key[-1]
        for n in ns:
            cells.append(
                SweepCell(
                    key=tuple(key) + (n,),
                    machine=machine,
                    program=source,
                    argument=(
                        argument_for(n) if argument_for is not None else str(n)
                    ),
                    **options,
                )
            )
    return cells


def aggregate_metrics(outcomes: Iterable[SweepOutcome]) -> Dict:
    """Fold the per-cell metric dumps of a grid into one serialized
    registry (counters and histograms sum, gauges take the max) —
    the cross-worker aggregation of ``python -m repro sweep --metrics``.
    Cells that failed or ran without metrics contribute nothing."""
    from ..telemetry.metrics import MetricsRegistry

    dumps = [
        outcome.metrics for outcome in outcomes if outcome.metrics is not None
    ]
    return MetricsRegistry.merge(dumps)


def aggregate_traces(outcomes: Iterable[SweepOutcome]) -> Dict:
    """Fold the per-cell event captures of a traced grid into one
    summary: per-kind event counts summed across cells, plus the
    replayed headline numbers (steps and collections sum over the
    grid; sup-space is the max over cells, with the cell key that
    attained it).  Cells that ran without tracing contribute nothing."""
    from ..telemetry.bus import replay

    counts: Dict[str, int] = {}
    cells = 0
    steps = 0
    collected = 0
    sup_space = 0
    sup_cell = None
    for outcome in outcomes:
        if outcome.events is None:
            continue
        cells += 1
        for event in outcome.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        summary = replay(outcome.events)
        steps += summary.steps
        collected += summary.collected
        if summary.sup_space > sup_space:
            sup_space = summary.sup_space
            sup_cell = outcome.cell.key
    return {
        "cells": cells,
        "events": sum(counts.values()),
        "counts": counts,
        "steps": steps,
        "collected": collected,
        "sup_space": sup_space,
        "sup_cell": sup_cell,
    }


def aggregate_series(outcomes: Iterable[SweepOutcome]):
    """Fold the per-cell blame series of a grid into one
    :class:`~repro.telemetry.blame.BlameSeries` (via ``merge``, so
    mixed accountings are refused).  Cells without blame profiling
    contribute nothing."""
    from ..telemetry.blame import BlameSeries

    return BlameSeries.merge(
        [
            BlameSeries.from_dict(outcome.series)
            for outcome in outcomes
            if outcome.series is not None
        ]
    )


def aggregate_retention(outcomes: Iterable[SweepOutcome]):
    """Fold the per-cell retention series of a grid into one
    :class:`~repro.telemetry.blame.BlameSeries` over root labels (via
    ``merge``, so mixed accountings are refused).  Cells without
    retention sampling contribute nothing."""
    from ..telemetry.blame import BlameSeries

    return BlameSeries.merge(
        [
            BlameSeries.from_dict(outcome.retention)
            for outcome in outcomes
            if outcome.retention is not None
        ]
    )


def series_from_outcomes(
    outcomes: Iterable[SweepOutcome],
) -> Dict[Tuple, Dict[int, int]]:
    """Group grid outcomes back into {key-without-n: {n: total}}."""
    series: Dict[Tuple, Dict[int, int]] = {}
    for outcome in outcomes:
        *key, n = outcome.cell.key
        series.setdefault(tuple(key), {})[n] = outcome.total
    return series


__all__ = [
    "SweepCell",
    "SweepOutcome",
    "aggregate_metrics",
    "aggregate_retention",
    "aggregate_series",
    "aggregate_traces",
    "default_jobs",
    "grid_cells",
    "run_cell",
    "run_grid",
    "series_from_outcomes",
    "sweep_series",
]
