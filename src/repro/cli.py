"""Command-line interface.

::

    python -m repro run program.scm --arg 100 --machine tail --meter
    python -m repro run program.scm --arg 100 --meter --stepper seed
    python -m repro run program.scm --arg 100 --meter --stream trace.jsonl
    python -m repro machines
    python -m repro census program.scm ...       # Figure 2 statistics
    python -m repro analyze --loops              # gen-3 loop audit
    python -m repro dynamic program.scm --arg 10 # runtime census
    python -m repro sweep program.scm --ns 8,16,32,64 --machine gc --jobs 4
    python -m repro sweep program.scm --machine tail,gc --metrics sweep.json
    python -m repro sweep program.scm --trace-sample 64 --blame-every 8
    python -m repro trace program.scm --arg 64 --machine gc --series
    python -m repro trace program.scm --arg 64 --suggest-fusions
    python -m repro analyze --retention --machine gc --diff tail
    python -m repro trace p.scm --arg 64 --retention-top 8 --flamegraph out.folded
    python -m repro sweep program.scm --machine gc --retention-sample 8
    python -m repro trace --metrics-in metrics.json   # rank fusions offline
    python -m repro audit gc tail                # space-safety audit
    python -m repro corpus                       # bundled benchmarks
    python -m repro serve --port 8000 --spool-dir spool   # machine farm
    python -m repro submit program.scm --arg 64 --machine gc --budget 300
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.dynamic import dynamic_census_table, run_census
from .analysis.frequency import analyze_program, frequency_table
from .harness.report import (
    render_blame_series,
    render_blame_table,
    render_retention_diff,
    render_series,
    render_step_mix,
    render_table,
    render_why_live,
)
from .harness.runner import run
from .harness.sweep import (
    aggregate_metrics,
    aggregate_retention,
    aggregate_series,
    aggregate_traces,
    grid_cells,
    run_grid,
    series_from_outcomes,
)
from .machine.variants import ALL_MACHINES, STEPPERS
from .programs.corpus import load_corpus
from .space.asymptotics import fit_growth, is_bounded
from .space.meter import DEFAULT_CHECKPOINT_EVERY, ENGINES


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _trace_paths(base: str) -> "tuple":
    """(jsonl, chrome) output paths for a ``--trace-out`` base: the
    JSONL log goes to the base itself, the Chrome/Perfetto trace next
    to it with a ``.chrome.json`` suffix."""
    stem = base[:-6] if base.endswith(".jsonl") else base
    return base, f"{stem}.chrome.json"


def _export_trace(bus, base: str) -> None:
    from .telemetry.export import write_chrome_trace, write_jsonl

    jsonl_path, chrome_path = _trace_paths(base)
    events = write_jsonl(bus, jsonl_path)
    write_chrome_trace(bus, chrome_path)
    print(
        f"; trace: {events} events -> {jsonl_path} (+ {chrome_path})",
        file=sys.stderr,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    source = _read_source(args.program)
    bus = None
    registry = None
    writer = None
    if args.trace_out or args.stream:
        from .telemetry.bus import TraceBus

        if args.stream:
            from .telemetry.export import JsonlStreamWriter

            writer = JsonlStreamWriter(
                args.stream, meta={"machine": args.machine}
            )
        # Streaming-only runs turn the ring off: the file is the record
        # and the run is constant-memory no matter how long it is.
        bus = TraceBus(sink=writer, retain=writer is None or bool(args.trace_out))
    if args.metrics:
        from .telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
    try:
        result = run(
            source,
            args.arg,
            machine=args.machine,
            meter=args.meter,
            linked=args.linked,
            fixed_precision=args.fixed_precision,
            step_limit=args.step_limit,
            stepper=args.stepper,
            gc_interval=args.gc_interval,
            trace=bus,
            metrics=registry,
        )
    finally:
        # Even when the run dies mid-trace, the streamed file must be
        # flushed, closed, and schema-valid.
        if writer is not None:
            events = writer.close(bus)
            print(f"; stream: {events} events -> {args.stream}",
                  file=sys.stderr)
    print(result.answer)
    if args.meter:
        print(
            f"; steps={result.steps} sup-space={result.sup_space} "
            f"S_{args.machine}={result.consumption}",
            file=sys.stderr,
        )
    if args.trace_out:
        _export_trace(bus, args.trace_out)
    if registry is not None:
        from .telemetry.export import write_metrics

        write_metrics(registry, args.metrics, machine=args.machine)
        print(f"; metrics -> {args.metrics}", file=sys.stderr)
    return 0


def _cmd_machines(args: argparse.Namespace) -> int:
    rows = []
    for name, cls in sorted(ALL_MACHINES.items()):
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        rows.append([name, doc])
    print(render_table(["machine", "description"], rows))
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    rows = [
        analyze_program(path, _read_source(path)) for path in args.programs
    ]
    print(frequency_table(rows if rows else None))
    return 0


#: Default corpus slice for ``analyze --meter-audit``: allocation- and
#: mutation-heavy programs where the generational engine's region
#: behavior (nursery rescans, promotions, remembered sets) is visible.
METER_AUDIT_PROGRAMS = ("fib", "sieve", "deriv", "destruct", "nqueens", "tak")


def _cmd_meter_audit(args: argparse.Namespace) -> int:
    from .programs.corpus import corpus_names, load_program
    from .space.consumption import measure

    names = args.programs or list(METER_AUDIT_PROGRAMS)
    bundled = set(corpus_names())
    rows = []
    for name in names:
        if name in bundled:
            entry = load_program(name)
            source, argument = entry.source, entry.default_input
        else:
            source, argument = _read_source(name), None
        for mode in ("exact", "sampled"):
            result = measure(
                args.machine,
                source,
                argument,
                engine="generational",
                meter=mode,
                step_limit=2_000_000,
            )
            stats = result.meter_stats or {}
            rows.append([
                name,
                mode,
                result.steps,
                stats.get("collections", 0),
                stats.get("trials", 0),
                stats.get("trial_skips", 0),
                stats.get("nursery_scans", 0),
                stats.get("nursery_scanned", 0),
                stats.get("promotions", 0),
                stats.get("remembered_size", 0),
                stats.get("tenure_floor", 0),
                stats.get("trips", "-"),
                stats.get("certified", "-"),
            ])
    print(render_table(
        [
            "program", "meter", "steps", "collect", "trials", "skips",
            "scans", "scanned", "promote", "remem", "floor", "trips",
            "cert",
        ],
        rows,
        title=(
            f"generational meter audit [{args.machine}] — per-region "
            "rescan counts and remembered-set sizes"
        ),
    ))
    return 0


#: Default program for ``analyze --retention``: the Theorem 25
#: gc-vs-tail separator, whose retention story is the paper's —
#: Return konts keeping environments live that tail-call deallocation
#: drops.
RETENTION_DEFAULT_PROGRAM = "gc-vs-tail"
RETENTION_DEFAULT_ARGUMENT = "48"


def _retention_source(name: str, argument: Optional[str]) -> "tuple":
    """Resolve an ``analyze --retention`` program name: a Theorem 25
    separator name, a bundled corpus name, or a file path."""
    from .programs.corpus import corpus_names, load_program
    from .programs.separators import SEPARATORS_BY_NAME

    if name in SEPARATORS_BY_NAME:
        return (
            SEPARATORS_BY_NAME[name].source,
            argument or RETENTION_DEFAULT_ARGUMENT,
        )
    if name in set(corpus_names()):
        entry = load_program(name)
        return entry.source, argument or entry.default_input
    return _read_source(name), argument


def _cmd_retention(args: argparse.Namespace) -> int:
    from .telemetry.retention import retention_diff, retention_run

    names = args.programs or [RETENTION_DEFAULT_PROGRAM]
    argument = getattr(args, "arg", None)
    for name in names:
        source, program_argument = _retention_source(name, argument)
        machines = [args.machine]
        if args.diff:
            machines.append(args.diff)
        snapshots = {}
        for machine in machines:
            _result, profiler = retention_run(
                machine,
                source,
                program_argument,
                fixed_precision=True,
                step_limit=2_000_000,
            )
            snapshot = profiler.at_peak
            snapshots[machine] = snapshot
            print(render_blame_table(
                snapshot.root_retention(),
                total=snapshot.space,
                title=(
                    f"retention at peak [{name} on {machine}, "
                    f"step {snapshot.step}] — "
                    "retained words per dominating root"
                ),
                limit=12,
            ))
            print(render_why_live(
                snapshot,
                top=3,
                title=f"why live [{name} on {machine}]",
            ))
        if args.diff:
            diff = retention_diff(
                snapshots[args.machine], snapshots[args.diff]
            )
            print(render_retention_diff(
                diff,
                left=args.machine,
                right=args.diff,
                title=(
                    f"retention diff [{name}: "
                    f"{args.machine} vs {args.diff}]"
                ),
            ))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if getattr(args, "meter_audit", False):
        return _cmd_meter_audit(args)
    if getattr(args, "retention", False):
        return _cmd_retention(args)
    if args.loops:
        from .analysis.loops import loop_candidates, loops_table

        if args.programs:
            rows = []
            for path in args.programs:
                rows.extend(loop_candidates(path, _read_source(path)))
            print(loops_table(rows))
        else:
            print(loops_table())
        return 0
    return _cmd_census(args)


def _cmd_dynamic(args: argparse.Namespace) -> int:
    if args.program:
        census = run_census(
            _read_source(args.program),
            args.arg,
            machine=args.machine,
            name=args.program,
        )
        print(dynamic_census_table([census]))
    else:
        print(dynamic_census_table())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    source = _read_source(args.program)
    ns = tuple(int(n) for n in args.ns.split(","))
    machines = args.machine.split(",")
    if args.meter == "sampled" and (
        args.metrics
        or args.trace_sample
        or args.blame_every
        or args.retention_sample
    ):
        raise SystemExit(
            "sweep: --meter sampled has no per-transition observation "
            "points; drop --metrics/--trace-sample/--blame-every/"
            "--retention-sample or use --meter exact"
        )
    cells = grid_cells(
        {(machine,): source for machine in machines},
        ns,
        fixed_precision=args.fixed_precision,
        linked=args.linked,
        engine=args.engine,
        meter=args.meter,
        checkpoint_every=args.checkpoint_every,
        metrics=bool(args.metrics),
        trace_sample=args.trace_sample,
        blame_every=args.blame_every,
        retention_sample=args.retention_sample,
    )
    outcomes = run_grid(cells, jobs=args.jobs, timeout=args.timeout)
    by_machine = series_from_outcomes(outcomes)
    series = {}
    for machine in machines:
        totals = tuple(by_machine[(machine,)][n] for n in ns)
        label = machine
        if len(ns) >= 3 and max(ns) >= 2 * min(ns):
            if is_bounded(totals):
                label = f"{machine} [O(1)]"
            else:
                label = f"{machine} [{fit_growth(ns, totals).name}]"
        series[label] = list(totals)
    print(render_series(ns, series, title=f"S_X({args.program}, N)"))
    if args.metrics:
        from .telemetry.export import write_metrics

        merged = aggregate_metrics(outcomes)
        write_metrics(
            merged,
            args.metrics,
            program=args.program,
            machines=machines,
            ns=list(ns),
        )
        print(f"; metrics ({len(outcomes)} cells) -> {args.metrics}",
              file=sys.stderr)
    if args.trace_sample:
        folded = aggregate_traces(outcomes)
        print(
            f"; traces: {folded['events']} events over {folded['cells']} "
            f"cells, {folded['steps']} steps replayed, "
            f"sup-space {folded['sup_space']} at cell {folded['sup_cell']}",
            file=sys.stderr,
        )
    if args.blame_every:
        merged = aggregate_series(outcomes)
        print(render_blame_table(
            merged.totals(),
            title=(
                f"space blame over the grid "
                f"[{len(merged)} samples, summed]"
            ),
            limit=12,
        ))
    if args.retention_sample:
        merged = aggregate_retention(outcomes)
        print(render_blame_table(
            merged.totals(),
            title=(
                f"retained words per dominating root over the grid "
                f"[{len(merged)} samples, summed]"
            ),
            limit=12,
        ))
    if args.trace_out:
        from .telemetry.bus import TraceBus

        bus = TraceBus()
        bus.meta.update(program=args.program, grid=len(outcomes))
        for outcome in outcomes:
            key = ":".join(str(part) for part in outcome.cell.key)
            if outcome.result is not None:
                bus.emit_cell(f"total:{key}", outcome.result.total)
                bus.emit_cell(f"steps:{key}", outcome.result.steps)
        _export_trace(bus, args.trace_out)
    if args.history:
        from .harness.sweep import history_records
        from .serving.scheduler import SweepHistory

        records = history_records(outcomes)
        SweepHistory.append_jsonl(args.history, records)
        print(
            f"; history: {len(records)} point(s) -> {args.history}",
            file=sys.stderr,
        )
    return 0


def _print_fusion_suggestions(source, machine=None, top=None) -> None:
    """Rank the gen-2 fusion candidates over a recorded step mix."""
    from .telemetry.metrics import suggest_fusions

    scope = f" [{machine}]" if machine else ""
    suggestions = suggest_fusions(source, machine=machine, top=top)
    if not suggestions:
        print(f"no recorded steps to rank fusion candidates over{scope}")
        return
    rows = [
        [
            entry["fusion"],
            f"{100.0 * entry['share']:.1f}%",
            entry["steps"],
            "+".join(entry["kinds"]),
        ]
        for entry in suggestions
    ]
    print(render_table(
        ["fusion", "share", "steps", "covers"],
        rows,
        title=f"suggested fusions by corpus share{scope}",
    ))


def _cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry.blame import trace_run
    from .telemetry.export import write_chrome_trace, write_jsonl, write_metrics
    from .telemetry.metrics import step_mix

    if args.metrics_in:
        # Feedback-loop mode: rank fusion candidates over a previously
        # recorded metrics dump instead of tracing a fresh run.  The
        # dump may hold several machines' counters; rank the aggregate.
        import json

        with open(args.metrics_in) as handle:
            document = json.load(handle)
        # write_metrics wraps the registry dump under "metrics" next to
        # run metadata; accept a bare registry dump too.
        dump = document.get("metrics", document)
        _print_fusion_suggestions(dump, top=args.top)
        return 0
    if not args.program:
        raise SystemExit(
            "trace: a program is required unless --metrics-in is given"
        )
    source = _read_source(args.program)
    machines = args.machine.split(",")
    for name in machines:
        if name not in ALL_MACHINES:
            raise SystemExit(f"unknown machine: {name!r}")
    accounting = "U" if args.linked else "S"
    retention_on = bool(args.retention_top or args.flamegraph)
    for name in machines:
        writer = None
        if args.stream:
            from .telemetry.export import JsonlStreamWriter

            suffix = f".{name}" if len(machines) > 1 else ""
            stem = (
                args.stream[:-6]
                if args.stream.endswith(".jsonl") else args.stream
            )
            stream_path = f"{stem}{suffix}.jsonl" if suffix else args.stream
            writer = JsonlStreamWriter(stream_path, meta={"machine": name})
        try:
            session = trace_run(
                name,
                source,
                args.arg,
                linked=args.linked,
                fixed_precision=args.fixed_precision,
                stepper=args.stepper,
                engine=args.engine,
                gc_interval=args.gc_interval,
                step_limit=args.step_limit,
                sample=(
                    {"step": args.sample, "apply": args.sample}
                    if args.sample > 1 else None
                ),
                capacity=args.capacity,
                blame_every=args.blame_every,
                sink=writer,
                retain=writer is None or bool(args.trace_out),
                retention_every=1 if retention_on else 0,
            )
        finally:
            if writer is not None:
                events = writer.close()
                print(f"; stream: {events} events -> {stream_path}",
                      file=sys.stderr)
        result = session.result
        print(
            f"{name}: answer={session.extra['answer']} "
            f"steps={result.steps} sup-space={result.sup_space} "
            f"(at step {result.peak_step}) "
            f"{accounting}_{name}={result.consumption}"
        )
        mix = step_mix(session.metrics, machine=name)
        print(render_step_mix(mix, title=f"step mix [{name}]"))
        if args.suggest_fusions:
            _print_fusion_suggestions(
                session.metrics, machine=name, top=args.top
            )
        blame = session.blame
        print(render_blame_table(
            dict(blame.at_peak),
            total=blame.peak_space,
            title=(
                f"space blame at peak [{name}, "
                f"step {blame.peak_step}]"
            ),
            limit=args.top,
        ))
        if args.series:
            print(render_blame_series(
                blame.series(),
                top=args.series_top,
                title=f"space blame over time [{name}]",
            ))
        if retention_on:
            snapshot = session.retention.at_peak
            if args.retention_top:
                print(render_blame_table(
                    snapshot.root_retention(),
                    total=snapshot.space,
                    title=(
                        f"retention at peak [{name}, "
                        f"step {snapshot.step}] — "
                        "retained words per dominating root"
                    ),
                    limit=args.retention_top,
                ))
                print(render_why_live(
                    snapshot, top=3, title=f"why live [{name}]"
                ))
            if args.flamegraph:
                from .telemetry.export import (
                    write_flamegraph,
                    write_retention_jsonl,
                )

                suffix = f".{name}" if len(machines) > 1 else ""
                stem = (
                    args.flamegraph[:-7]
                    if args.flamegraph.endswith(".folded")
                    else args.flamegraph
                )
                folded_path = (
                    f"{stem}{suffix}.folded" if suffix else args.flamegraph
                )
                retention_path = f"{stem}{suffix}.retention.jsonl"
                stacks = write_flamegraph(snapshot, folded_path)
                nodes = write_retention_jsonl(snapshot, retention_path)
                print(
                    f"; flamegraph: {stacks} stacks -> {folded_path} "
                    f"(+ {nodes} nodes -> {retention_path})",
                    file=sys.stderr,
                )
        if args.trace_out:
            suffix = f".{name}" if len(machines) > 1 else ""
            base, chrome = _trace_paths(args.trace_out)
            stem = base[:-6] if base.endswith(".jsonl") else base
            jsonl_path = (
                f"{stem}{suffix}.jsonl" if suffix else base
            )
            chrome_path = (
                f"{stem}{suffix}.chrome.json" if suffix else chrome
            )
            events = write_jsonl(session.bus, jsonl_path)
            write_chrome_trace(session.bus, chrome_path, blame=blame.series())
            print(
                f"; trace: {events} events -> {jsonl_path} "
                f"(+ {chrome_path})",
                file=sys.stderr,
            )
        if args.metrics:
            suffix = f".{name}" if len(machines) > 1 else ""
            stem = (
                args.metrics[:-5]
                if args.metrics.endswith(".json") else args.metrics
            )
            metrics_path = (
                f"{stem}{suffix}.json" if suffix else args.metrics
            )
            write_metrics(session.metrics, metrics_path, machine=name)
            print(f"; metrics -> {metrics_path}", file=sys.stderr)
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .space.safety import check_space_safety

    report = check_space_safety(args.candidate, args.reference)
    print(report.summary())
    return 0 if report.safe else 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    rows = [
        [program.name, program.default_input, len(program.source.splitlines())]
        for program in load_corpus()
    ]
    print(render_table(["program", "default input", "lines"], rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serving.server import ReproServer

    server = ReproServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        default_budget=args.default_budget,
        spool_dir=args.spool_dir,
        max_retries=args.max_retries,
        job_timeout=args.job_timeout,
        history=args.history,
        artifact_capacity=args.artifact_cache,
    )

    def announce(line: str) -> None:
        print(line, flush=True)

    try:
        asyncio.run(server.serve_forever(announce=announce))
    except KeyboardInterrupt:
        print("; interrupted, shutting down", file=sys.stderr)
    finally:
        server.close_sync()
    return 0


def _http_json(url: str, payload=None):
    """POST *payload* (or GET when None); returns (status, body dict)."""
    import json
    import urllib.error
    import urllib.request

    if payload is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _poll_job(url: str, job: str, poll_interval: float) -> int:
    """Poll one job to settlement, print its terminal receipt, and map
    the outcome through :data:`repro.serving.protocol.EXIT_CODES`."""
    import json
    import time as time_module

    while True:
        status, snapshot = _http_json(f"{url}/jobs/{job}")
        if status != 200:
            print(f"; poll failed ({status})", file=sys.stderr)
            return 1
        if snapshot["status"] not in ("queued", "running"):
            break
        time_module.sleep(poll_interval)
    receipt = snapshot["result"]
    print(json.dumps(receipt))
    if snapshot["status"] == "done":
        return 0
    if snapshot["status"] == "killed":
        print(
            f"; killed: consumption >= {receipt['consumption']} over "
            f"budget {receipt['budget']} (top holder: {receipt['holder']})",
            file=sys.stderr,
        )
        return 3
    if snapshot["status"] == "deferred":
        print(
            f"; deferred: predicted {receipt['predicted']} over budget "
            f"{receipt['budget']} ({receipt['growth']} from sweep history "
            f"at N={receipt['requested_n']})",
            file=sys.stderr,
        )
        return 4
    return 1


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit to a running `repro serve`; exit codes are the
    :data:`repro.serving.protocol.EXIT_CODES` table (0 done, 1
    error/rejected, 3 quota-killed, 4 deferred)."""
    import json

    source = _read_source(args.program)
    payload = {
        "program": source,
        "tenant": args.tenant,
        "machine": args.machine,
        "accounting": "linked" if args.linked else "flat",
        "engine": args.engine,
        "meter": args.meter,
        "checkpoint_every": args.checkpoint_every,
    }
    if args.budget is not None:
        payload["budget"] = args.budget
    if args.step_limit is not None:
        payload["step_limit"] = args.step_limit
    url = args.url.rstrip("/")

    if args.batch_args:
        if args.arg is not None:
            raise SystemExit("submit: use --arg or --batch-args, not both")
        jobs = []
        for argument in args.batch_args.split(","):
            member = dict(payload)
            member["argument"] = argument.strip()
            jobs.append(member)
        status, body = _http_json(f"{url}/submit", {"jobs": jobs})
        if status != 202:
            print(f"; rejected ({status}): {body.get('reason')}",
                  file=sys.stderr)
            print(json.dumps(body))
            return 1
        entries = body["jobs"]
        ids = [entry["job"] for entry in entries]
        print(
            f"; submitted batch of {len(ids)}: {ids[0]}..{ids[-1]} "
            f"(budget={entries[0].get('budget')})",
            file=sys.stderr,
        )
        if args.no_poll:
            print(json.dumps(body))
            return 0
        code = 0
        for job in ids:
            code = max(code, _poll_job(url, job, args.poll_interval))
        return code

    if args.arg is not None:
        payload["argument"] = args.arg
    status, body = _http_json(f"{url}/submit", payload)
    if status != 202:
        print(f"; rejected ({status}): {body.get('reason')}", file=sys.stderr)
        print(json.dumps(body))
        return 1
    job = body["job"]
    print(f"; submitted {job} (budget={body.get('budget')})", file=sys.stderr)
    if args.no_poll:
        print(json.dumps(body))
        return 0
    return _poll_job(url, job, args.poll_interval)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reference implementations and space-complexity classes from "
            "Clinger's 'Proper Tail Recursion and Space Efficiency' "
            "(PLDI 1998)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run a Scheme program")
    run_parser.add_argument("program", help="path to a .scm file, or -")
    run_parser.add_argument("--arg", help="input expression D for (P D)")
    run_parser.add_argument(
        "--machine", default="tail", choices=sorted(ALL_MACHINES)
    )
    run_parser.add_argument(
        "--meter", action="store_true",
        help="run a Definition 21 space-efficient computation and report S_X",
    )
    run_parser.add_argument("--linked", action="store_true",
                            help="Figure 8 (linked) accounting")
    run_parser.add_argument("--fixed-precision", action="store_true",
                            help="charge every number one word")
    run_parser.add_argument("--step-limit", type=int, default=5_000_000)
    run_parser.add_argument(
        "--stepper", default="annotated", choices=STEPPERS,
        help="transition function: the full live tier stack "
        "(annotated), the compiled gen-3 tier named explicitly (gen3), "
        "the superinstruction stepper with gen-3 off (gen2), or the "
        "preserved seed stepper (seed) — identical semantics",
    )
    run_parser.add_argument(
        "--gc-interval", type=int, default=1,
        help="collect every k-th step on metered runs (default 1)",
    )
    run_parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write the run's event stream to PATH (JSONL) and "
        "PATH-stem.chrome.json (Chrome/Perfetto trace)",
    )
    run_parser.add_argument(
        "--metrics", metavar="PATH",
        help="write a metrics registry dump (JSON) to PATH",
    )
    run_parser.add_argument(
        "--stream", metavar="PATH",
        help="stream events to PATH (JSONL) as they are emitted; "
        "without --trace-out the ring is disabled, so arbitrarily "
        "long runs trace in constant memory",
    )
    run_parser.set_defaults(handler=_cmd_run)

    machines_parser = commands.add_parser(
        "machines", help="list the reference implementations"
    )
    machines_parser.set_defaults(handler=_cmd_machines)

    census_parser = commands.add_parser(
        "census",
        help="Figure 2 static tail-call statistics "
        "(bundled corpus when no files given)",
    )
    census_parser.add_argument("programs", nargs="*")
    census_parser.set_defaults(handler=_cmd_census)

    analyze_parser = commands.add_parser(
        "analyze",
        help="static program analyses: Figure 2 statistics by "
        "default, the gen-3 self-tail-loop audit with --loops "
        "(bundled corpus when no files given)",
    )
    analyze_parser.add_argument("programs", nargs="*")
    analyze_parser.add_argument(
        "--loops", action="store_true",
        help="ranked table of reconstructable self-tail-loop "
        "candidates: what the bytecode pass compiled and which "
        "back edges became direct loops",
    )
    analyze_parser.add_argument(
        "--meter-audit", action="store_true",
        help="run the generational metering engine (exact and sampled) "
        "over corpus programs (or the given files) and report "
        "per-region rescan counts — nursery scans, trial walks, "
        "verdict-cache skips — promotions, and remembered-set sizes",
    )
    analyze_parser.add_argument(
        "--machine", default="gc", choices=sorted(ALL_MACHINES),
        help="machine for --meter-audit and --retention runs "
        "(default gc)",
    )
    analyze_parser.add_argument(
        "--retention", action="store_true",
        help="why-live retention analysis: run the program(s) — "
        "Theorem 25 separator names, corpus names, or files; default "
        f"{RETENTION_DEFAULT_PROGRAM!r} — under the exact meter and "
        "print the peak configuration's retained words per dominating "
        "root plus shortest why-live root paths for the "
        "largest-retained store cells",
    )
    analyze_parser.add_argument(
        "--diff", metavar="MACHINE", choices=sorted(ALL_MACHINES),
        help="with --retention: also run MACHINE and print the "
        "per-root-class retained diff (the gc-vs-tail separator gap "
        "is exactly the vanished Return-kont rows)",
    )
    analyze_parser.add_argument(
        "--arg", help="input expression for --retention runs "
        "(defaults per program)",
    )
    analyze_parser.set_defaults(handler=_cmd_analyze)

    dynamic_parser = commands.add_parser(
        "dynamic", help="runtime tail-call census"
    )
    dynamic_parser.add_argument("program", nargs="?")
    dynamic_parser.add_argument("--arg")
    dynamic_parser.add_argument(
        "--machine", default="tail", choices=sorted(ALL_MACHINES)
    )
    dynamic_parser.set_defaults(handler=_cmd_dynamic)

    sweep_parser = commands.add_parser(
        "sweep", help="measure S_X(P, N) over a range of N"
    )
    sweep_parser.add_argument("program")
    sweep_parser.add_argument("--ns", default="8,16,32,64")
    sweep_parser.add_argument(
        "--machine", default="tail,gc",
        help="comma-separated machine names",
    )
    sweep_parser.add_argument("--linked", action="store_true")
    sweep_parser.add_argument(
        "--fixed-precision", action="store_true", default=True
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the measurement grid (default serial)",
    )
    sweep_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell timeout in seconds (parallel runs only)",
    )
    sweep_parser.add_argument(
        "--engine", default="delta", choices=ENGINES,
        help="metering engine (all report identical numbers)",
    )
    sweep_parser.add_argument(
        "--meter", default="exact", choices=("exact", "sampled"),
        help="space meter: exact (measure every transition, the "
        "Definition 21 schedule made observable) or sampled (the "
        "checkpointed sampling meter — identical numbers, exact "
        "measurement only at checkpoints and allocation bursts; "
        "incompatible with per-cell telemetry)",
    )
    sweep_parser.add_argument(
        "--checkpoint-every", type=int, default=DEFAULT_CHECKPOINT_EVERY,
        metavar="K",
        help="sampled meter: take an exact measurement at least every "
        f"K transitions (default {DEFAULT_CHECKPOINT_EVERY})",
    )
    sweep_parser.add_argument(
        "--metrics", metavar="PATH",
        help="collect per-cell metrics in the workers, aggregate them "
        "across the grid, and write the merged dump (JSON) to PATH",
    )
    sweep_parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write one summary event per grid cell to PATH (JSONL) "
        "and PATH-stem.chrome.json",
    )
    sweep_parser.add_argument(
        "--trace-sample", type=int, default=0, metavar="K",
        help="attach a sampled TraceBus to every cell (keep every K-th "
        "step/apply event) and ship the events back over the worker "
        "channel; prints the aggregated replay summary",
    )
    sweep_parser.add_argument(
        "--blame-every", type=int, default=0, metavar="K",
        help="attach a blame profiler to every cell (decompose every "
        "K-th measured configuration), ship the per-cell BlameSeries "
        "back, and print the merged who-holds-the-space table",
    )
    sweep_parser.add_argument(
        "--retention-sample", type=int, default=0, metavar="K",
        help="attach a why-live retention profiler to every cell "
        "(snapshot every K-th measured configuration), ship the "
        "per-cell per-root retained-size series back, and print the "
        "merged retained-words-per-root table",
    )
    sweep_parser.add_argument(
        "--history", metavar="PATH",
        help="append every measured (N, consumption) point to PATH "
        "(JSONL) — the sweep-history file `repro serve --history` "
        "feeds the predictive quota scheduler from",
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    trace_parser = commands.add_parser(
        "trace",
        help="run with the full telemetry stack: step mix, space "
        "blame at the peak, exported trace/metrics",
    )
    trace_parser.add_argument(
        "program", nargs="?",
        help="path to a .scm file, or - (optional with --metrics-in)",
    )
    trace_parser.add_argument("--arg", help="input expression D for (P D)")
    trace_parser.add_argument(
        "--machine", default="tail",
        help="comma-separated machine names",
    )
    trace_parser.add_argument("--linked", action="store_true",
                              help="Figure 8 (linked) accounting")
    trace_parser.add_argument("--fixed-precision", action="store_true")
    trace_parser.add_argument(
        "--stepper", default="annotated", choices=STEPPERS
    )
    trace_parser.add_argument("--engine", default="delta", choices=ENGINES)
    trace_parser.add_argument("--gc-interval", type=int, default=1)
    trace_parser.add_argument("--step-limit", type=int, default=5_000_000)
    trace_parser.add_argument(
        "--sample", type=int, default=1,
        help="keep every k-th step/apply event (space, gc, and phase "
        "events are never sampled away)",
    )
    trace_parser.add_argument(
        "--capacity", type=int, default=None,
        help="bound the event buffer (ring semantics: oldest dropped)",
    )
    trace_parser.add_argument(
        "--blame-every", type=int, default=1,
        help="decompose every k-th measured configuration",
    )
    trace_parser.add_argument(
        "--top", type=int, default=12,
        help="blame table rows before folding into '(other)'",
    )
    trace_parser.add_argument(
        "--series", action="store_true",
        help="render the per-holder space time-series as stacked "
        "sparklines (who holds the space, and when)",
    )
    trace_parser.add_argument(
        "--series-top", type=int, default=6,
        help="sparkline rows before folding into '(other)'",
    )
    trace_parser.add_argument(
        "--retention-top", type=int, default=0, metavar="K",
        help="attach the why-live retention profiler and print the "
        "top-K dominating roots (retained words partitioning the "
        "peak space exactly) plus why-live root paths",
    )
    trace_parser.add_argument(
        "--flamegraph", metavar="OUT",
        help="write the peak configuration's retention dominator tree "
        "as folded flamegraph stacks to OUT (flamegraph.pl/speedscope "
        "input; weights sum to the peak space) and the full node "
        "table to OUT-stem.retention.jsonl",
    )
    trace_parser.add_argument("--trace-out", metavar="PATH")
    trace_parser.add_argument("--metrics", metavar="PATH")
    trace_parser.add_argument(
        "--stream", metavar="PATH",
        help="stream events to PATH (JSONL) as they are emitted; "
        "without --trace-out the ring is disabled (constant memory)",
    )
    trace_parser.add_argument(
        "--suggest-fusions", action="store_true",
        help="rank candidate superinstructions by their share of the "
        "recorded step mix (the gen-2 stepper feedback loop)",
    )
    trace_parser.add_argument(
        "--metrics-in", metavar="PATH",
        help="rank fusion candidates over a previously written "
        "--metrics dump instead of tracing a fresh run",
    )
    trace_parser.set_defaults(handler=_cmd_trace)

    corpus_parser = commands.add_parser(
        "corpus", help="list the bundled benchmark corpus"
    )
    corpus_parser.set_defaults(handler=_cmd_corpus)

    audit_parser = commands.add_parser(
        "audit",
        help="space-safety audit: is CANDIDATE within O(S_REFERENCE)? "
        "(exit status 1 when not)",
    )
    audit_parser.add_argument("candidate", choices=sorted(ALL_MACHINES))
    audit_parser.add_argument(
        "reference", nargs="?", default="tail", choices=sorted(ALL_MACHINES)
    )
    audit_parser.set_defaults(handler=_cmd_audit)

    serve_parser = commands.add_parser(
        "serve",
        help="evaluation service: HTTP submit/poll/stream with "
        "space-quota admission control",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 = ephemeral; the bound port is announced)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, help="worker processes"
    )
    serve_parser.add_argument(
        "--max-pending", type=int, default=8,
        help="per-tenant bounded queue (429 past this)",
    )
    serve_parser.add_argument(
        "--default-budget", type=int, default=None,
        help="space budget (words of consumption) for submits that "
        "carry none; omit for unmetered admission",
    )
    serve_parser.add_argument(
        "--spool-dir", default=None,
        help="directory for per-job JSONL receipt spools",
    )
    serve_parser.add_argument(
        "--max-retries", type=int, default=1,
        help="re-queue a job this many times when its worker dies",
    )
    serve_parser.add_argument(
        "--job-timeout", type=float, default=None,
        help="kill a job's worker after this many seconds",
    )
    serve_parser.add_argument(
        "--history", metavar="PATH", default=None,
        help="seed the predictive quota scheduler from a `repro sweep "
        "--history` JSONL file (the service also learns from its own "
        "completed runs)",
    )
    serve_parser.add_argument(
        "--artifact-cache", type=int, default=64, metavar="N",
        help="capacity of the content-addressed compiled-program "
        "cache (entries)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    from .serving.protocol import EXIT_CODES

    exit_code_lines = "\n".join(
        f"  {code}  {name:<15} {meaning}"
        for code, name, meaning in EXIT_CODES
    )
    submit_parser = commands.add_parser(
        "submit",
        help="client for `repro serve`: submit a program (or a "
        "--batch-args batch), poll to the terminal receipt "
        "(exit 3 on a quota kill, 4 when deferred)",
        epilog="exit codes:\n" + exit_code_lines,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    submit_parser.add_argument("program", help="path to a .scm file, or -")
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8000", help="server base URL"
    )
    submit_parser.add_argument("--arg", help="input expression")
    submit_parser.add_argument(
        "--batch-args", metavar="N1,N2,...",
        help="submit one batch with the same program over several "
        "arguments (one POST, one worker round-trip; receipts stay "
        "per-job); exit code is the worst member's",
    )
    submit_parser.add_argument(
        "--machine", default="tail", choices=sorted(ALL_MACHINES)
    )
    submit_parser.add_argument(
        "--linked", action="store_true",
        help="Figure 8 linked (U_X) accounting instead of flat",
    )
    submit_parser.add_argument(
        "--engine", default="delta", choices=ENGINES
    )
    submit_parser.add_argument(
        "--meter", default="sampled", choices=("exact", "sampled")
    )
    submit_parser.add_argument(
        "--checkpoint-every", type=int, default=DEFAULT_CHECKPOINT_EVERY
    )
    submit_parser.add_argument(
        "--budget", type=int, default=None,
        help="space budget in words of Definition 23 consumption",
    )
    submit_parser.add_argument("--step-limit", type=int, default=None)
    submit_parser.add_argument("--tenant", default="anonymous")
    submit_parser.add_argument(
        "--no-poll", action="store_true",
        help="print the 202 body and exit instead of polling",
    )
    submit_parser.add_argument(
        "--poll-interval", type=float, default=0.2
    )
    submit_parser.set_defaults(handler=_cmd_submit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
