"""Command-line interface.

::

    python -m repro run program.scm --arg 100 --machine tail --meter
    python -m repro machines
    python -m repro census program.scm ...       # Figure 2 statistics
    python -m repro dynamic program.scm --arg 10 # runtime census
    python -m repro sweep program.scm --ns 8,16,32,64 --machine gc --jobs 4
    python -m repro corpus                       # bundled benchmarks
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.dynamic import dynamic_census_table, run_census
from .analysis.frequency import analyze_program, frequency_table
from .harness.report import render_series, render_table
from .harness.runner import run
from .harness.sweep import grid_cells, run_grid, series_from_outcomes
from .machine.variants import ALL_MACHINES
from .programs.corpus import load_corpus
from .space.asymptotics import fit_growth, is_bounded
from .space.meter import ENGINES


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _cmd_run(args: argparse.Namespace) -> int:
    source = _read_source(args.program)
    result = run(
        source,
        args.arg,
        machine=args.machine,
        meter=args.meter,
        linked=args.linked,
        fixed_precision=args.fixed_precision,
        step_limit=args.step_limit,
    )
    print(result.answer)
    if args.meter:
        print(
            f"; steps={result.steps} sup-space={result.sup_space} "
            f"S_{args.machine}={result.consumption}",
            file=sys.stderr,
        )
    return 0


def _cmd_machines(args: argparse.Namespace) -> int:
    rows = []
    for name, cls in sorted(ALL_MACHINES.items()):
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        rows.append([name, doc])
    print(render_table(["machine", "description"], rows))
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    rows = [
        analyze_program(path, _read_source(path)) for path in args.programs
    ]
    print(frequency_table(rows if rows else None))
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    if args.program:
        census = run_census(
            _read_source(args.program),
            args.arg,
            machine=args.machine,
            name=args.program,
        )
        print(dynamic_census_table([census]))
    else:
        print(dynamic_census_table())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    source = _read_source(args.program)
    ns = tuple(int(n) for n in args.ns.split(","))
    machines = args.machine.split(",")
    cells = grid_cells(
        {(machine,): source for machine in machines},
        ns,
        fixed_precision=args.fixed_precision,
        linked=args.linked,
        engine=args.engine,
    )
    outcomes = run_grid(cells, jobs=args.jobs, timeout=args.timeout)
    by_machine = series_from_outcomes(outcomes)
    series = {}
    for machine in machines:
        totals = tuple(by_machine[(machine,)][n] for n in ns)
        label = machine
        if len(ns) >= 3 and max(ns) >= 2 * min(ns):
            if is_bounded(totals):
                label = f"{machine} [O(1)]"
            else:
                label = f"{machine} [{fit_growth(ns, totals).name}]"
        series[label] = list(totals)
    print(render_series(ns, series, title=f"S_X({args.program}, N)"))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .space.safety import check_space_safety

    report = check_space_safety(args.candidate, args.reference)
    print(report.summary())
    return 0 if report.safe else 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    rows = [
        [program.name, program.default_input, len(program.source.splitlines())]
        for program in load_corpus()
    ]
    print(render_table(["program", "default input", "lines"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reference implementations and space-complexity classes from "
            "Clinger's 'Proper Tail Recursion and Space Efficiency' "
            "(PLDI 1998)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run a Scheme program")
    run_parser.add_argument("program", help="path to a .scm file, or -")
    run_parser.add_argument("--arg", help="input expression D for (P D)")
    run_parser.add_argument(
        "--machine", default="tail", choices=sorted(ALL_MACHINES)
    )
    run_parser.add_argument(
        "--meter", action="store_true",
        help="run a Definition 21 space-efficient computation and report S_X",
    )
    run_parser.add_argument("--linked", action="store_true",
                            help="Figure 8 (linked) accounting")
    run_parser.add_argument("--fixed-precision", action="store_true",
                            help="charge every number one word")
    run_parser.add_argument("--step-limit", type=int, default=5_000_000)
    run_parser.set_defaults(handler=_cmd_run)

    machines_parser = commands.add_parser(
        "machines", help="list the reference implementations"
    )
    machines_parser.set_defaults(handler=_cmd_machines)

    census_parser = commands.add_parser(
        "census",
        help="Figure 2 static tail-call statistics "
        "(bundled corpus when no files given)",
    )
    census_parser.add_argument("programs", nargs="*")
    census_parser.set_defaults(handler=_cmd_census)

    dynamic_parser = commands.add_parser(
        "dynamic", help="runtime tail-call census"
    )
    dynamic_parser.add_argument("program", nargs="?")
    dynamic_parser.add_argument("--arg")
    dynamic_parser.add_argument(
        "--machine", default="tail", choices=sorted(ALL_MACHINES)
    )
    dynamic_parser.set_defaults(handler=_cmd_dynamic)

    sweep_parser = commands.add_parser(
        "sweep", help="measure S_X(P, N) over a range of N"
    )
    sweep_parser.add_argument("program")
    sweep_parser.add_argument("--ns", default="8,16,32,64")
    sweep_parser.add_argument(
        "--machine", default="tail,gc",
        help="comma-separated machine names",
    )
    sweep_parser.add_argument("--linked", action="store_true")
    sweep_parser.add_argument(
        "--fixed-precision", action="store_true", default=True
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the measurement grid (default serial)",
    )
    sweep_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell timeout in seconds (parallel runs only)",
    )
    sweep_parser.add_argument(
        "--engine", default="delta", choices=ENGINES,
        help="metering engine (both report identical numbers)",
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    corpus_parser = commands.add_parser(
        "corpus", help="list the bundled benchmark corpus"
    )
    corpus_parser.set_defaults(handler=_cmd_corpus)

    audit_parser = commands.add_parser(
        "audit",
        help="space-safety audit: is CANDIDATE within O(S_REFERENCE)? "
        "(exit status 1 when not)",
    )
    audit_parser.add_argument("candidate", choices=sorted(ALL_MACHINES))
    audit_parser.add_argument(
        "reference", nargs="?", default="tail", choices=sorted(ALL_MACHINES)
    )
    audit_parser.set_defaults(handler=_cmd_audit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
